// The cost/reliability design frontier (§6 of the paper, end to end).
//
// Given a durability target (mission loss probability) and an annual budget,
// the frontier search enumerates storage designs — replica count, media mix
// from the drive catalog (disk, tape, and the gigayear etched medium of
// arXiv:1310.2961), audit cadence, deployment independence, and two-phase
// procurement/migration schedules — prices each with src/drives/cost_model,
// scores each with the exact CTMC where compatible and the importance-
// sampled sweep engine otherwise, and returns the Pareto frontier.
//
// Determinism contract (tested in tests/frontier_test.cc):
//   FrontierResult::ToJson() is byte-identical across worker thread counts,
//   candidate enumeration order, and evaluation backends (in-process pool,
//   in-process service, resident sweep_serviced over its socket).
// The contract holds because (a) candidates are identified by content hash
// and visited in hash order, (b) each candidate's sweep document never
// contains the thread count, (c) every backend runs the identical
// execute/finalize path and the frontier copies the estimate doubles out of
// those canonical result bytes, and (d) provenance ("cache" vs "computed")
// is reported through metrics and the trace journal, never through the
// frontier JSON. See src/frontier/README.md.

#ifndef LONGSTORE_SRC_FRONTIER_FRONTIER_H_
#define LONGSTORE_SRC_FRONTIER_FRONTIER_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/drives/cost_model.h"
#include "src/drives/drive_specs.h"
#include "src/frontier/eval_backend.h"
#include "src/obs/trace.h"
#include "src/planner/planner.h"
#include "src/rare/biased_sampler.h"
#include "src/scenario/scenario.h"
#include "src/threats/independence.h"
#include "src/util/units.h"

namespace longstore {

// What the archive must achieve, and what it may spend.
struct FrontierTarget {
  Duration mission = Duration::Years(50.0);
  // Acceptable probability of losing the archive over the mission.
  double target_loss_probability = 1e-6;
  // Candidates whose (time-weighted) annual cost exceeds this are discarded
  // before evaluation. Infinite = unconstrained.
  double max_annual_cost_usd = std::numeric_limits<double>::infinity();
};

// The design space the search enumerates (cross product, plus mixed-media
// multisets and two-phase migration schedules when enabled).
struct FrontierSpace {
  std::vector<DriveSpec> media = DriveCatalog();
  std::vector<int> replica_choices = {2, 3, 4};
  std::vector<double> audit_choices = {1.0, 12.0};
  std::vector<DeploymentStyle> deployment_choices = {
      DeploymentStyle::kFullyDiverse};
  // Also enumerate heterogeneous fleets: every multiset of `media` of each
  // replica count (e.g. two disks + one tape). Heterogeneous fleets are
  // outside the exact CTMC's state space, so they are simulated.
  bool mixed_media = false;
  // For each T (years, 0 < T < mission), add two-phase schedules: run on
  // medium A for T years, migrate everything to medium B for the remainder.
  // Homogeneous phases only, A != B.
  std::vector<double> migration_years = {};

  double archive_gb = 1000.0;
  double latent_to_visible_ratio = 5.0;  // Schwarz et al.'s factor
  CostAssumptions costs = CostAssumptions::Defaults();
  CorrelationFactors correlation = CorrelationFactors::Defaults();
};

// One procurement phase of a candidate: `drives.size()` replicas (one entry
// per replica; equal entries = homogeneous fleet) operated for `years` with
// the given audit cadence. Canonical form keeps `drives` sorted by model so
// the same multiset always hashes identically.
struct FrontierPhase {
  double years = 0.0;
  std::vector<DriveSpec> drives;
  double audits_per_year = 0.0;
};

// A candidate design: one or more phases (sum of years = mission) under one
// deployment style. Single-phase candidates are steady-state designs;
// multi-phase candidates encode migration schedules.
struct FrontierCandidate {
  std::vector<FrontierPhase> phases;
  DeploymentStyle deployment = DeploymentStyle::kFullyDiverse;

  // "Barracuda 7200.7 x3, 12 audits/y, fully diverse" or, with phases,
  // "10 y: LTO-3 x3 -> 40 y: SiN-W gigayear disc x3, 1 audits/y, ...".
  std::string Describe() const;
};

// Simulation knobs for candidates the exact CTMC cannot score.
struct FrontierOptions {
  int64_t trials = 2000;
  uint64_t seed = 33;
  double confidence = 0.95;
  // Change of measure for the weighted loss-probability estimand. The
  // default is the identity measure (plain Monte Carlo): frontier searches
  // score many heterogeneous designs at modest trial budgets, and at those
  // budgets a tilted estimator's weight distribution is skewed enough that
  // the point estimate sits far below the truth with a CI that excludes it
  // (measured against the exact CTMC: x10 tilt on both hazards reported
  // 0.0016 for a 0.0258 scenario; even a pilot-tuned x64 latent tilt was
  // 300x low). Plain MC keeps the reported CI honest — designs rarer than
  // ~1/trials resolve to probability 0, which ties them on the frontier and
  // keeps the cheapest. Set an explicit tilt (see TuneFaultBias in
  // src/rare/rare_event.h) only for single-design deep dives where the
  // pilot can be afforded and its diagnostics inspected.
  FaultBias bias;
  // Score every candidate through the sweep engine, even CTMC-compatible
  // ones. Used by the CTMC-agreement test and the memoization bench.
  bool force_simulation = false;
  // Optional lifecycle journal: frontier_candidate / frontier_point /
  // frontier_search events (see tools/trace_dump --help).
  obs::TraceJournal* journal = nullptr;
};

// Scores scenarios for the frontier search, cheapest path first: an exact
// CTMC answer when the scenario is compatible, otherwise a single-cell
// importance-sampled sweep through the configured backend. Results are
// memoized by (scenario content hash, mission), so a search that revisits a
// scenario — and any later search through the same evaluator — pays nothing.
class FrontierEvaluator {
 public:
  struct ScenarioEval {
    double probability = 0.0;
    double ci_lo = 0.0;
    double ci_hi = 0.0;
    bool exact = false;   // scored by the exact CTMC
    int64_t trials = 0;   // trials recorded in the result (0 when exact)
    // Provenance: "ctmc", "computed", "cache", "resumed", or "memo".
    // Deterministic inputs produce deterministic estimates regardless of
    // source; provenance is surfaced only via metrics and traces.
    std::string source;
  };

  struct Stats {
    int64_t ctmc_evals = 0;
    int64_t simulated_evals = 0;
    int64_t simulated_trials = 0;  // new trials paid to the backend
    int64_t memo_hits = 0;
    int64_t cache_served = 0;  // backend answered "cache" / "resumed"
  };

  // `backend` must outlive the evaluator.
  FrontierEvaluator(FrontierOptions options, FrontierEvalBackend* backend);

  // Loss probability of `scenario` over `mission`, with its CI.
  ScenarioEval EvaluateScenario(const Scenario& scenario, Duration mission);

  const Stats& stats() const { return stats_; }
  const FrontierOptions& options() const { return options_; }
  size_t memo_size() const { return memo_.size(); }

 private:
  FrontierOptions options_;
  FrontierEvalBackend* backend_;
  std::map<std::string, ScenarioEval> memo_;
  Stats stats_;
};

// A scored candidate. Mission loss probability composes across phases as
// 1 - prod(1 - p_i) (independent survival per phase); annual cost is the
// time-weighted average of the phases' fleet costs.
struct FrontierPoint {
  FrontierCandidate candidate;
  uint64_t id = 0;  // content hash: dedup identity and canonical sort key
  double annual_cost_usd = 0.0;
  // Per phase: the fleet's cost components (summed over replicas).
  std::vector<ReplicaCostBreakdown> phase_costs;
  double loss_probability = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  // "ctmc" (every phase exact), "simulated" (none), or "mixed".
  std::string method;
  int64_t trials = 0;
  bool meets_target = false;
  bool on_frontier = false;
};

struct FrontierResult {
  FrontierTarget target;
  // Sorted by (annual cost asc, loss probability asc, id asc); `on_frontier`
  // marks the strictly-improving-reliability walk over that order.
  std::vector<FrontierPoint> points;

  // Canonical bytes — the determinism contract's unit of comparison.
  std::string ToJson() const;
  // "cost,loss" rows; `explain` appends the per-point cost breakdown.
  std::string ToCsv(bool explain = false) const;
  std::string ToTable(bool explain = false) const;
};

// Enumerates the space, dedups candidates by content hash, discards
// over-budget candidates, scores the rest through `evaluator` in hash order,
// and marks the Pareto frontier. Reusing one evaluator across calls makes
// repeated searches hit its memo (and, with a service backend, the
// daemon's result cache).
FrontierResult RunFrontierSearch(const FrontierTarget& target,
                                 const FrontierSpace& space,
                                 FrontierEvaluator& evaluator);

// Scores a planner option the exact CTMC refused (PlannerReport::dropped)
// through the simulation pipeline: loss probability from the evaluator,
// MTTDL back-derived via MttfForLossProbability, cost from the cost model.
EvaluatedOption EvaluateDroppedOption(const DroppedOption& dropped,
                                      const PlannerConfig& config,
                                      FrontierEvaluator& evaluator);

// The pinned small search shared by tests/frontier_golden_test.cc, the CI
// frontier-smoke job, and `frontier_plan --golden-small`: 3 media x
// replicas {2,3,4} x audits {1,12}, fully diverse, mixed media on (so the
// search exercises both the CTMC screen and the simulated path).
FrontierTarget GoldenSmallTarget();
FrontierSpace GoldenSmallSpace();
FrontierOptions GoldenSmallOptions();

}  // namespace longstore

#endif  // LONGSTORE_SRC_FRONTIER_FRONTIER_H_
