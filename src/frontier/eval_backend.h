// Evaluation backends for the frontier search: one interface, three ways to
// execute a single-shard sweep document.
//
// The byte-identity contract (src/frontier/README.md) hangs on this layer:
// the frontier builds each candidate's sweep document exactly once and hands
// the *same bytes* to whichever backend is configured. The in-process pool
// backend runs the document through the identical execute/finalize path the
// resident service uses (RunSweepCells -> FinalizeSweepCells -> ToJson), so
// the result bytes — and therefore the frontier JSON assembled from them —
// cannot depend on which backend answered.

#ifndef LONGSTORE_SRC_FRONTIER_EVAL_BACKEND_H_
#define LONGSTORE_SRC_FRONTIER_EVAL_BACKEND_H_

#include <cstdint>
#include <string>

#include "src/service/sweep_service.h"
#include "src/sweep/worker_pool.h"

namespace longstore {

class FrontierEvalBackend {
 public:
  struct Eval {
    // Provenance: "computed", or the service's "cache" / "resumed" when the
    // resident daemon answered without (full) simulation.
    std::string source;
    // SweepResult::ToJson bytes for the document's cells.
    std::string result_json;
    // Trials simulated to answer this request (0 on an exact cache hit).
    int64_t new_trials = 0;
  };

  virtual ~FrontierEvalBackend() = default;

  // Executes a checksummed single-shard sweep document (shard 0 of 1).
  // Throws std::runtime_error on transport/service failure and
  // std::invalid_argument on a malformed document.
  virtual Eval Evaluate(const std::string& sweep_document) = 0;
};

// In-process execution on a WorkerPool (nullptr = the process-wide shared
// pool). This is the reference backend: it parses and validates the document
// like the service does, then runs the same execution core.
class PoolEvalBackend : public FrontierEvalBackend {
 public:
  explicit PoolEvalBackend(WorkerPool* pool = nullptr);
  Eval Evaluate(const std::string& sweep_document) override;

 private:
  WorkerPool& pool_;
};

// An in-process SweepService (tests, benches): exercises the real cache /
// resume classification without a socket.
class ServiceEvalBackend : public FrontierEvalBackend {
 public:
  explicit ServiceEvalBackend(SweepService& service) : service_(service) {}
  Eval Evaluate(const std::string& sweep_document) override;

 private:
  SweepService& service_;
};

// A resident sweep_serviced over its Unix-domain socket (one connection per
// evaluation, like tools/sweep_client). Repeated and refined searches hit
// the daemon's ComputeSweepId cache and adaptive-resume path for free.
class SocketEvalBackend : public FrontierEvalBackend {
 public:
  explicit SocketEvalBackend(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}
  Eval Evaluate(const std::string& sweep_document) override;

 private:
  std::string socket_path_;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_FRONTIER_EVAL_BACKEND_H_
