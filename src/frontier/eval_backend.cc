#include "src/frontier/eval_backend.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/service/service_protocol.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"

namespace longstore {
namespace {

int64_t TotalTrials(const std::vector<SweepCellExecution>& executions) {
  int64_t total = 0;
  for (const SweepCellExecution& cell : executions) {
    total += cell.trials;
  }
  return total;
}

FrontierEvalBackend::Eval EvalFromResponse(ServiceResponse response) {
  if (!response.ok) {
    throw std::runtime_error("frontier eval: service error" +
                             std::string(response.retryable ? " (retryable)" : "") +
                             ": " + response.message);
  }
  FrontierEvalBackend::Eval eval;
  eval.source = std::move(response.source);
  eval.result_json = std::move(response.result_json);
  eval.new_trials = response.new_trials;
  return eval;
}

}  // namespace

PoolEvalBackend::PoolEvalBackend(WorkerPool* pool)
    : pool_(pool != nullptr ? *pool : WorkerPool::Shared()) {}

FrontierEvalBackend::Eval PoolEvalBackend::Evaluate(
    const std::string& sweep_document) {
  // The service's HandleSweep compute path, verbatim: verify + parse the
  // envelope, validate, execute, finalize once. Identical bytes out.
  ShardSpec spec = ShardSpec::FromJson(sweep_document, "frontier eval");
  if (spec.shard_index != 0 || spec.shard_count != 1) {
    throw std::invalid_argument(
        "frontier eval: the sweep document must be the whole sweep (shard 0 of 1)");
  }
  ValidateSweepOptions(spec.options);
  ValidateSweepCells(spec.cells);

  Eval eval;
  eval.source = "computed";
  std::vector<SweepCellExecution> executions =
      RunSweepCells(pool_, std::move(spec.cells), spec.options);
  eval.new_trials = TotalTrials(executions);
  eval.result_json =
      FinalizeSweepCells(std::move(executions), spec.axis_names,
                         spec.options.estimand, spec.options.mc.confidence)
          .ToJson();
  return eval;
}

FrontierEvalBackend::Eval ServiceEvalBackend::Evaluate(
    const std::string& sweep_document) {
  ServiceRequest request;
  request.kind = ServiceRequest::Kind::kSweep;
  request.sweep_document = sweep_document;
  return EvalFromResponse(service_.Handle(request));
}

FrontierEvalBackend::Eval SocketEvalBackend::Evaluate(
    const std::string& sweep_document) {
  if (socket_path_.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("frontier eval: socket path too long: " +
                             socket_path_);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("frontier eval: socket() failed");
  }
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw std::runtime_error("frontier eval: cannot connect to '" +
                             socket_path_ + "' (is sweep_serviced running?)");
  }

  ServiceRequest request;
  request.kind = ServiceRequest::Kind::kSweep;
  request.sweep_document = sweep_document;
  std::string response_bytes;
  std::string frame_error;
  FrameStatus status = FrameStatus::kOk;
  const bool sent = WriteFrame(fd, request.ToJson());
  if (sent) {
    status = ReadFrame(fd, &response_bytes, &frame_error);
  }
  ::close(fd);
  if (!sent) {
    throw std::runtime_error("frontier eval: failed to send request to '" +
                             socket_path_ + "'");
  }
  if (status == FrameStatus::kEof) {
    throw std::runtime_error("frontier eval: service closed the connection");
  }
  if (status != FrameStatus::kOk) {
    throw std::runtime_error("frontier eval: malformed response frame: " +
                             frame_error);
  }
  return EvalFromResponse(
      ServiceResponse::FromJson(response_bytes, socket_path_));
}

}  // namespace longstore
