#include "src/frontier/frontier.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>

#include "src/obs/metrics.h"
#include "src/scenario/media.h"
#include "src/scenario/scenario_ctmc.h"
#include "src/shard/shard.h"
#include "src/sweep/sweep.h"
#include "src/util/json.h"
#include "src/util/table.h"

namespace longstore {

namespace {

// Groups equal consecutive models: {"A","A","B"} -> "A x2 + B x1".
std::string DescribeFleet(const std::vector<DriveSpec>& drives) {
  std::string out;
  size_t i = 0;
  while (i < drives.size()) {
    size_t j = i;
    while (j < drives.size() && drives[j].model == drives[i].model) {
      ++j;
    }
    if (!out.empty()) {
      out += " + ";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), " x%zu", j - i);
    out += drives[i].model + buf;
    i = j;
  }
  return out;
}

}  // namespace

std::string FrontierCandidate::Describe() const {
  std::string out;
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) {
      out += " -> ";
    }
    if (phases.size() > 1) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4g y: ", phases[i].years);
      out += buf;
    }
    out += DescribeFleet(phases[i].drives);
  }
  if (!phases.empty()) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ", %.3g audits/y, ",
                  phases.back().audits_per_year);
    out += buf;
    out += std::string(DeploymentStyleName(deployment));
  }
  return out;
}

FrontierEvaluator::FrontierEvaluator(FrontierOptions options,
                                     FrontierEvalBackend* backend)
    : options_(std::move(options)), backend_(backend) {
  if (backend_ == nullptr) {
    throw std::invalid_argument("FrontierEvaluator: backend must not be null");
  }
}

FrontierEvaluator::ScenarioEval FrontierEvaluator::EvaluateScenario(
    const Scenario& scenario, Duration mission) {
  std::string key;
  json::AppendUint64Hex(key, scenario.CanonicalHash());
  key += '/';
  json::AppendDouble(key, mission.hours());
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.memo_hits;
    if (obs::Enabled()) {
      static obs::Counter& memo_saved =
          obs::Registry::Global().counter("frontier.evals_memo_saved");
      memo_saved.Add();
    }
    ScenarioEval eval = it->second;
    eval.source = "memo";
    return eval;
  }

  ScenarioEval eval;
  if (!options_.force_simulation && !CtmcIncompatibility(scenario)) {
    // Exact pre-screen: nullopt (loss unreachable) means probability 0.
    eval.probability = ScenarioCtmcLossProbability(scenario, mission).value_or(0.0);
    eval.ci_lo = eval.probability;
    eval.ci_hi = eval.probability;
    eval.exact = true;
    eval.source = "ctmc";
    ++stats_.ctmc_evals;
    if (obs::Enabled()) {
      static obs::Counter& screened =
          obs::Registry::Global().counter("frontier.ctmc_screened");
      screened.Add();
    }
  } else {
    // A single-cell importance-sampled sweep, packaged exactly like a
    // sharded or service request: content-derived seeds, thread count never
    // serialized, canonical checksummed bytes. Every backend therefore
    // produces the same result bytes for this document.
    SweepSpec spec;
    std::string label;
    json::AppendUint64Hex(label, scenario.CanonicalHash());
    spec.AddCell(std::move(label), scenario);
    SweepOptions sweep_options;
    sweep_options.estimand = SweepOptions::Estimand::kWeightedLossProbability;
    sweep_options.mission = mission;
    sweep_options.bias = options_.bias;
    sweep_options.seed_mode = SweepOptions::SeedMode::kScenarioDerived;
    sweep_options.mc.trials = options_.trials;
    sweep_options.mc.seed = options_.seed;
    sweep_options.mc.confidence = options_.confidence;
    const ShardPlan plan(spec, sweep_options, 1);
    const FrontierEvalBackend::Eval answer =
        backend_->Evaluate(plan.shards()[0].ToJson());

    const json::Value result =
        json::Parse(answer.result_json, "frontier result");
    if (result.kind != json::Value::Kind::kArray || result.array.size() != 1) {
      json::Fail("frontier result", "expected exactly one result cell");
    }
    json::ObjectReader cell(result.array[0], "cell", "frontier result");
    // The estimate doubles come out of the canonical result bytes; parsing
    // and re-emitting them is round-trip exact, so frontier JSON assembled
    // from any backend's answer is byte-identical.
    eval.probability = cell.GetNumber("probability");
    eval.ci_lo = cell.GetNumber("ci_lo");
    eval.ci_hi = cell.GetNumber("ci_hi");
    eval.trials = cell.GetInt64("trials");
    eval.exact = false;
    eval.source = answer.source;
    ++stats_.simulated_evals;
    stats_.simulated_trials += answer.new_trials;
    const bool served_from_cache =
        answer.source == "cache" || answer.source == "resumed";
    if (served_from_cache) {
      ++stats_.cache_served;
    }
    if (obs::Enabled()) {
      static obs::Counter& simulated =
          obs::Registry::Global().counter("frontier.evals_simulated");
      static obs::Counter& cache_served =
          obs::Registry::Global().counter("frontier.evals_cache_served");
      static obs::Histogram& trials =
          obs::Registry::Global().histogram("frontier.eval_trials");
      simulated.Add();
      if (served_from_cache) {
        cache_served.Add();
      }
      trials.Record(eval.trials);
    }
  }
  memo_.emplace(std::move(key), eval);
  return eval;
}

namespace {

// The planner config the per-replica fault derivation reads (rates, MDL, α).
PlannerConfig ParamsConfig(const FrontierSpace& space) {
  PlannerConfig config;
  config.latent_to_visible_ratio = space.latent_to_visible_ratio;
  config.correlation = space.correlation;
  config.costs = space.costs;
  config.archive_gb = space.archive_gb;
  return config;
}

// Realizes one phase as a runnable Scenario: per-drive fault parameters via
// the planner's derivation (offline media pay handling faults; detection is
// an exponential scrub at the derived MDL, so homogeneous phases stay inside
// the exact CTMC's state space), correlation from the deployment style.
Scenario PhaseScenario(const FrontierPhase& phase, DeploymentStyle deployment,
                       const PlannerConfig& params_config) {
  if (phase.drives.empty()) {
    throw std::invalid_argument("frontier: a phase must have >= 1 replica");
  }
  ScenarioBuilder builder;
  double alpha = 1.0;
  for (const DriveSpec& drive : phase.drives) {
    StrategyOption option;
    option.drive = drive;
    option.replicas = static_cast<int>(phase.drives.size());
    option.audits_per_year = phase.audits_per_year;
    option.deployment = deployment;
    const FaultParams params = DeriveParams(option, params_config);
    // α depends only on deployment and replica count — identical across the
    // phase's drives.
    alpha = params.alpha;
    builder.AddReplica(SpecFromParams(params, drive.model));
  }
  return builder.Correlation(alpha).Build();
}

ReplicaCostBreakdown PhaseFleetCost(const FrontierPhase& phase,
                                    double archive_gb,
                                    const CostAssumptions& costs) {
  ReplicaCostBreakdown total;
  for (const DriveSpec& drive : phase.drives) {
    const ReplicaCostBreakdown one =
        AnnualReplicaCost(drive, archive_gb, phase.audits_per_year, costs);
    total.capex_per_year += one.capex_per_year;
    total.power_per_year += one.power_per_year;
    total.admin_per_year += one.admin_per_year;
    total.space_per_year += one.space_per_year;
    total.audit_per_year += one.audit_per_year;
  }
  return total;
}

// Content identity: deployment + per-phase (duration, cadence, scenario
// hash). Independent of enumeration order, media list order (fleets are
// sorted by model first), and labels.
uint64_t CandidateId(const FrontierCandidate& candidate,
                     const std::vector<Scenario>& phase_scenarios) {
  std::string key(DeploymentStyleName(candidate.deployment));
  for (size_t i = 0; i < candidate.phases.size(); ++i) {
    key += '|';
    json::AppendDouble(key, candidate.phases[i].years);
    key += ':';
    json::AppendDouble(key, candidate.phases[i].audits_per_year);
    key += ':';
    json::AppendUint64Hex(key, phase_scenarios[i].CanonicalHash());
  }
  return json::Fnv1a64(key);
}

struct BuiltCandidate {
  FrontierCandidate candidate;
  uint64_t id = 0;
  std::vector<Scenario> phase_scenarios;
  double annual_cost_usd = 0.0;
  std::vector<ReplicaCostBreakdown> phase_costs;
};

// Every fleet (multiset of media, sorted by model) of `replicas` drives:
// homogeneous fleets always, every mixed multiset when `mixed_media`.
template <typename Fn>
void ForEachFleet(const FrontierSpace& space, int replicas, Fn&& fn) {
  if (!space.mixed_media) {
    for (const DriveSpec& drive : space.media) {
      fn(std::vector<DriveSpec>(static_cast<size_t>(replicas), drive));
    }
    return;
  }
  std::vector<size_t> pick(static_cast<size_t>(replicas), 0);
  for (;;) {
    std::vector<DriveSpec> fleet;
    fleet.reserve(pick.size());
    for (size_t index : pick) {
      fleet.push_back(space.media[index]);
    }
    std::sort(fleet.begin(), fleet.end(),
              [](const DriveSpec& a, const DriveSpec& b) { return a.model < b.model; });
    fn(std::move(fleet));
    // Next non-decreasing index multiset.
    size_t i = pick.size();
    while (i > 0 && pick[i - 1] + 1 == space.media.size()) {
      --i;
    }
    if (i == 0) {
      break;
    }
    const size_t next = pick[i - 1] + 1;
    for (size_t j = i - 1; j < pick.size(); ++j) {
      pick[j] = next;
    }
  }
}

template <typename Fn>
void ForEachCandidate(const FrontierTarget& target, const FrontierSpace& space,
                      Fn&& fn) {
  const double mission_years = target.mission.years();
  for (DeploymentStyle deployment : space.deployment_choices) {
    for (int replicas : space.replica_choices) {
      for (double audits : space.audit_choices) {
        // Steady-state designs: one phase for the whole mission.
        ForEachFleet(space, replicas, [&](std::vector<DriveSpec> fleet) {
          FrontierCandidate candidate;
          candidate.deployment = deployment;
          FrontierPhase phase;
          phase.years = mission_years;
          phase.drives = std::move(fleet);
          phase.audits_per_year = audits;
          candidate.phases.push_back(std::move(phase));
          fn(std::move(candidate));
        });
        // Two-phase migration schedules: homogeneous A for T years, then
        // migrate to homogeneous B (A != B) for the remainder.
        for (double migrate_at : space.migration_years) {
          if (!(migrate_at > 0.0) || !(migrate_at < mission_years)) {
            continue;
          }
          for (const DriveSpec& first : space.media) {
            for (const DriveSpec& second : space.media) {
              if (first.model == second.model) {
                continue;
              }
              FrontierCandidate candidate;
              candidate.deployment = deployment;
              FrontierPhase a;
              a.years = migrate_at;
              a.drives.assign(static_cast<size_t>(replicas), first);
              a.audits_per_year = audits;
              FrontierPhase b;
              b.years = mission_years - migrate_at;
              b.drives.assign(static_cast<size_t>(replicas), second);
              b.audits_per_year = audits;
              candidate.phases.push_back(std::move(a));
              candidate.phases.push_back(std::move(b));
              fn(std::move(candidate));
            }
          }
        }
      }
    }
  }
}

std::string JoinSources(const std::vector<std::string>& sources) {
  std::string out;
  for (const std::string& source : sources) {
    if (out.find(source) != std::string::npos) {
      continue;
    }
    if (!out.empty()) {
      out += '+';
    }
    out += source;
  }
  return out;
}

}  // namespace

FrontierResult RunFrontierSearch(const FrontierTarget& target,
                                 const FrontierSpace& space,
                                 FrontierEvaluator& evaluator) {
  if (!(target.mission.hours() > 0.0)) {
    throw std::invalid_argument("RunFrontierSearch: mission must be positive");
  }
  if (space.media.empty()) {
    throw std::invalid_argument("RunFrontierSearch: no media to search over");
  }
  obs::TraceJournal* journal =
      obs::Enabled() ? evaluator.options().journal : nullptr;
  const PlannerConfig params_config = ParamsConfig(space);
  const double mission_years = target.mission.years();

  int64_t generated = 0;
  int64_t duplicates = 0;
  int64_t over_budget = 0;
  std::map<uint64_t, BuiltCandidate> unique;
  ForEachCandidate(target, space, [&](FrontierCandidate candidate) {
    ++generated;
    BuiltCandidate built;
    built.phase_scenarios.reserve(candidate.phases.size());
    for (const FrontierPhase& phase : candidate.phases) {
      built.phase_scenarios.push_back(
          PhaseScenario(phase, candidate.deployment, params_config));
      built.phase_costs.push_back(
          PhaseFleetCost(phase, space.archive_gb, space.costs));
      built.annual_cost_usd += (phase.years / mission_years) *
                               built.phase_costs.back().total_per_year();
    }
    built.id = CandidateId(candidate, built.phase_scenarios);
    built.candidate = std::move(candidate);
    if (unique.count(built.id) != 0) {
      ++duplicates;
      if (journal != nullptr) {
        journal->Emit(obs::TraceEvent("frontier_candidate")
                          .Hex("id", built.id)
                          .Str("status", "duplicate"));
      }
      return;
    }
    if (built.annual_cost_usd > target.max_annual_cost_usd) {
      ++over_budget;
      if (journal != nullptr) {
        journal->Emit(obs::TraceEvent("frontier_candidate")
                          .Hex("id", built.id)
                          .Str("status", "over_budget")
                          .Dbl("annual_cost_usd", built.annual_cost_usd));
      }
      return;
    }
    unique.emplace(built.id, std::move(built));
  });
  if (obs::Enabled()) {
    static obs::Counter& generated_counter =
        obs::Registry::Global().counter("frontier.candidates_generated");
    static obs::Counter& duplicate_counter =
        obs::Registry::Global().counter("frontier.candidates_duplicate");
    static obs::Counter& budget_counter =
        obs::Registry::Global().counter("frontier.candidates_over_budget");
    generated_counter.Add(generated);
    duplicate_counter.Add(duplicates);
    budget_counter.Add(over_budget);
  }

  FrontierResult result;
  result.target = target;
  // std::map iteration = ascending id: the evaluation visit order is fixed
  // by candidate *content*, never by enumeration order.
  for (auto& [id, built] : unique) {
    FrontierPoint point;
    point.id = id;
    point.annual_cost_usd = built.annual_cost_usd;
    point.phase_costs = std::move(built.phase_costs);

    double log_survival = 0.0;
    double log_survival_lo = 0.0;
    double log_survival_hi = 0.0;
    size_t exact_phases = 0;
    std::vector<std::string> sources;
    for (size_t i = 0; i < built.candidate.phases.size(); ++i) {
      const FrontierEvaluator::ScenarioEval eval = evaluator.EvaluateScenario(
          built.phase_scenarios[i],
          Duration::Years(built.candidate.phases[i].years));
      log_survival += std::log1p(-eval.probability);
      log_survival_lo += std::log1p(-eval.ci_lo);
      log_survival_hi += std::log1p(-eval.ci_hi);
      if (eval.exact) {
        ++exact_phases;
      }
      point.trials += eval.trials;
      sources.push_back(eval.source);
    }
    // + 0.0 normalizes -expm1(0.0)'s negative zero to +0.0 so canonical
    // bytes never print "-0".
    point.loss_probability = -std::expm1(log_survival) + 0.0;
    point.ci_lo = -std::expm1(log_survival_lo) + 0.0;
    point.ci_hi = -std::expm1(log_survival_hi) + 0.0;
    point.method = exact_phases == built.candidate.phases.size() ? "ctmc"
                   : exact_phases == 0                           ? "simulated"
                                                                 : "mixed";
    point.meets_target =
        point.loss_probability <= target.target_loss_probability;
    point.candidate = std::move(built.candidate);
    if (journal != nullptr) {
      journal->Emit(obs::TraceEvent("frontier_candidate")
                        .Hex("id", point.id)
                        .Str("status", point.method)
                        .Str("source", JoinSources(sources))
                        .Dbl("annual_cost_usd", point.annual_cost_usd)
                        .Dbl("loss_probability", point.loss_probability)
                        .Int("trials", point.trials));
    }
    result.points.push_back(std::move(point));
  }

  std::sort(result.points.begin(), result.points.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.annual_cost_usd != b.annual_cost_usd) {
                return a.annual_cost_usd < b.annual_cost_usd;
              }
              if (a.loss_probability != b.loss_probability) {
                return a.loss_probability < b.loss_probability;
              }
              return a.id < b.id;
            });
  double best_loss = 2.0;
  int64_t kept = 0;
  for (FrontierPoint& point : result.points) {
    if (point.loss_probability < best_loss) {
      best_loss = point.loss_probability;
      point.on_frontier = true;
      ++kept;
    }
    if (journal != nullptr) {
      journal->Emit(obs::TraceEvent("frontier_point")
                        .Hex("id", point.id)
                        .Int("kept", point.on_frontier ? 1 : 0)
                        .Dbl("annual_cost_usd", point.annual_cost_usd)
                        .Dbl("loss_probability", point.loss_probability));
    }
  }
  if (journal != nullptr) {
    journal->Emit(obs::TraceEvent("frontier_search")
                      .Int("generated", generated)
                      .Int("duplicates", duplicates)
                      .Int("over_budget", over_budget)
                      .Int("points", static_cast<int64_t>(result.points.size()))
                      .Int("kept", kept));
  }
  if (obs::Enabled()) {
    static obs::Counter& searches =
        obs::Registry::Global().counter("frontier.searches");
    static obs::Histogram& points_histogram =
        obs::Registry::Global().histogram("frontier.search_points");
    searches.Add();
    points_histogram.Record(static_cast<int64_t>(result.points.size()));
  }
  return result;
}

std::string FrontierResult::ToJson() const {
  std::string out = "{\"frontier_version\":1,\"target\":{\"mission_years\":";
  json::AppendDouble(out, target.mission.years());
  out += ",\"target_loss_probability\":";
  json::AppendDouble(out, target.target_loss_probability);
  out += ",\"max_annual_cost_usd\":";
  json::AppendDouble(out, target.max_annual_cost_usd);
  out += "},\"points\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    const FrontierPoint& point = points[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"id\":";
    json::AppendUint64Hex(out, point.id);
    out += ",\"description\":";
    json::AppendEscaped(out, point.candidate.Describe());
    out += ",\"deployment\":";
    json::AppendEscaped(out,
                        std::string(DeploymentStyleName(point.candidate.deployment)));
    out += ",\"schedule\":[";
    for (size_t p = 0; p < point.candidate.phases.size(); ++p) {
      const FrontierPhase& phase = point.candidate.phases[p];
      if (p > 0) {
        out += ',';
      }
      out += "{\"years\":";
      json::AppendDouble(out, phase.years);
      out += ",\"audits_per_year\":";
      json::AppendDouble(out, phase.audits_per_year);
      out += ",\"media\":[";
      for (size_t d = 0; d < phase.drives.size(); ++d) {
        if (d > 0) {
          out += ',';
        }
        json::AppendEscaped(out, phase.drives[d].model);
      }
      out += "]}";
    }
    out += "],\"annual_cost_usd\":";
    json::AppendDouble(out, point.annual_cost_usd);
    out += ",\"cost_breakdown\":[";
    for (size_t p = 0; p < point.phase_costs.size(); ++p) {
      const ReplicaCostBreakdown& cost = point.phase_costs[p];
      if (p > 0) {
        out += ',';
      }
      out += "{\"capex\":";
      json::AppendDouble(out, cost.capex_per_year);
      out += ",\"power\":";
      json::AppendDouble(out, cost.power_per_year);
      out += ",\"admin\":";
      json::AppendDouble(out, cost.admin_per_year);
      out += ",\"space\":";
      json::AppendDouble(out, cost.space_per_year);
      out += ",\"audit\":";
      json::AppendDouble(out, cost.audit_per_year);
      out += ",\"total\":";
      json::AppendDouble(out, cost.total_per_year());
      out += '}';
    }
    out += "],\"method\":";
    json::AppendEscaped(out, point.method);
    out += ",\"loss_probability\":";
    json::AppendDouble(out, point.loss_probability);
    out += ",\"ci_lo\":";
    json::AppendDouble(out, point.ci_lo);
    out += ",\"ci_hi\":";
    json::AppendDouble(out, point.ci_hi);
    out += ",\"trials\":";
    json::AppendInt64(out, point.trials);
    out += ",\"meets_target\":";
    out += point.meets_target ? "true" : "false";
    out += ",\"on_frontier\":";
    out += point.on_frontier ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {

// The time-weighted per-component breakdown (what --explain prints).
ReplicaCostBreakdown WeightedBreakdown(const FrontierPoint& point) {
  ReplicaCostBreakdown weighted;
  double total_years = 0.0;
  for (const FrontierPhase& phase : point.candidate.phases) {
    total_years += phase.years;
  }
  for (size_t i = 0; i < point.phase_costs.size(); ++i) {
    const double w = point.candidate.phases[i].years / total_years;
    weighted.capex_per_year += w * point.phase_costs[i].capex_per_year;
    weighted.power_per_year += w * point.phase_costs[i].power_per_year;
    weighted.admin_per_year += w * point.phase_costs[i].admin_per_year;
    weighted.space_per_year += w * point.phase_costs[i].space_per_year;
    weighted.audit_per_year += w * point.phase_costs[i].audit_per_year;
  }
  return weighted;
}

Table FrontierTable(const FrontierResult& result, bool explain) {
  std::vector<std::string> headers = {"cost $/y", "loss probability",
                                      "ci_lo",    "ci_hi",
                                      "method",   "trials",
                                      "target",   "frontier"};
  if (explain) {
    for (const char* component : {"capex", "power", "admin", "space", "audit"}) {
      headers.push_back(component);
    }
  }
  headers.push_back("design");
  Table table(std::move(headers));
  for (const FrontierPoint& point : result.points) {
    std::vector<std::string> row = {
        Table::Fmt(point.annual_cost_usd, 2),
        Table::FmtSci(point.loss_probability),
        Table::FmtSci(point.ci_lo),
        Table::FmtSci(point.ci_hi),
        point.method,
        std::to_string(point.trials),
        point.meets_target ? "yes" : "no",
        point.on_frontier ? "yes" : "no",
    };
    if (explain) {
      const ReplicaCostBreakdown weighted = WeightedBreakdown(point);
      row.push_back(Table::Fmt(weighted.capex_per_year, 2));
      row.push_back(Table::Fmt(weighted.power_per_year, 2));
      row.push_back(Table::Fmt(weighted.admin_per_year, 2));
      row.push_back(Table::Fmt(weighted.space_per_year, 2));
      row.push_back(Table::Fmt(weighted.audit_per_year, 2));
    }
    row.push_back(point.candidate.Describe());
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace

std::string FrontierResult::ToCsv(bool explain) const {
  return FrontierTable(*this, explain).ToCsv();
}

std::string FrontierResult::ToTable(bool explain) const {
  return FrontierTable(*this, explain).Render();
}

EvaluatedOption EvaluateDroppedOption(const DroppedOption& dropped,
                                      const PlannerConfig& config,
                                      FrontierEvaluator& evaluator) {
  EvaluatedOption evaluated;
  evaluated.option = dropped.option;
  evaluated.params = dropped.params;
  const FrontierEvaluator::ScenarioEval eval =
      evaluator.EvaluateScenario(dropped.scenario, config.mission);
  evaluated.loss_probability = eval.probability;
  // The MTTDL the measured loss probability implies under the exponential
  // approximation — comparable to the CTMC-scored options' column.
  evaluated.mttdl = MttfForLossProbability(eval.probability, config.mission);
  evaluated.annual_cost_usd = AnnualSystemCost(
      dropped.option.drive, config.archive_gb, dropped.option.replicas,
      dropped.option.audits_per_year, config.costs);
  return evaluated;
}

FrontierTarget GoldenSmallTarget() {
  FrontierTarget target;
  target.mission = Duration::Years(50.0);
  target.target_loss_probability = 1e-6;
  return target;
}

FrontierSpace GoldenSmallSpace() {
  FrontierSpace space;
  space.media = {SeagateBarracuda200Gb(), SeagateCheetah146Gb(),
                 Lto3TapeCartridge()};
  space.replica_choices = {2, 3, 4};
  space.audit_choices = {1.0, 12.0};
  space.deployment_choices = {DeploymentStyle::kFullyDiverse};
  space.mixed_media = true;
  return space;
}

FrontierOptions GoldenSmallOptions() {
  FrontierOptions options;
  options.trials = 600;
  options.seed = 33;
  return options;
}

}  // namespace longstore
