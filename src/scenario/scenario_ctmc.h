// Exact-model bridge: scores a Scenario with the continuous-time Markov
// chains of src/model/replica_ctmc.h when the scenario lies inside their
// state space, and rejects it with a precise, actionable reason when it
// does not. This is the analytic leg of the sim-vs-model cross-validation:
// heterogeneous or age-dependent fleets go to the simulator; everything the
// CTMC *can* model it models exactly.

#ifndef LONGSTORE_SRC_SCENARIO_SCENARIO_CTMC_H_
#define LONGSTORE_SRC_SCENARIO_SCENARIO_CTMC_H_

#include <optional>
#include <string>

#include "src/model/fault_params.h"
#include "src/model/replica_ctmc.h"
#include "src/scenario/scenario.h"
#include "src/util/units.h"

namespace longstore {

// Why the exact CTMC cannot model `scenario`, or nullopt when it can. The
// chain requires a homogeneous fleet of memoryless processes: exponential
// faults (no ages), exponential repair, a memoryless detection process
// (none / exponential / on-access — periodic scrubbing is deterministic),
// no common-mode sources, and the at-most-one-fault-per-replica bookkeeping
// (visible_fault_surfaces_latent off). Each violation names the offending
// replica/field and what to change.
std::optional<std::string> CtmcIncompatibility(const Scenario& scenario);

// The scenario's effective per-replica FaultParams (MV/ML/MRV/MRL from
// replica `index`, MDL = that replica's scrub policy's mean detection
// latency, alpha from the scenario). This is the exact analytic counterpart
// for memoryless scrub kinds and the standard MDL = interval/2
// approximation for periodic ones. Throws std::out_of_range on a bad index.
FaultParams ScenarioFaultParams(const Scenario& scenario, int index = 0);

// Exact MTTDL / mission-loss probability from the all-healthy state, under
// the scenario's own rate convention and redundancy threshold. Throws
// std::invalid_argument carrying the CtmcIncompatibility reason when the
// scenario is outside the chain's state space; returns nullopt only when
// data loss is unreachable (the underlying chain solvers' contract).
std::optional<Duration> ScenarioCtmcMttdl(const Scenario& scenario);
std::optional<double> ScenarioCtmcLossProbability(const Scenario& scenario,
                                                  Duration mission);

}  // namespace longstore

#endif  // LONGSTORE_SRC_SCENARIO_SCENARIO_CTMC_H_
