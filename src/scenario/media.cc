#include "src/scenario/media.h"

namespace longstore {

ReplicaSpec DiskSpec(const DriveSpec& drive, ScrubPolicy scrub,
                     double latent_to_visible_ratio) {
  const FaultParams params =
      OnlineReplicaParams(drive, scrub, latent_to_visible_ratio);
  ReplicaSpec spec;
  spec.media = drive.model;
  spec.mv = params.mv;
  spec.ml = params.ml;
  spec.mrv = params.mrv;
  spec.mrl = params.mrl;
  spec.scrub = scrub;
  return spec;
}

ReplicaSpec TapeSpec(const DriveSpec& medium, double audits_per_year,
                     const OfflineHandlingModel& handling,
                     double latent_to_visible_ratio) {
  const FaultParams params = OfflineReplicaParams(medium, audits_per_year, handling,
                                                  latent_to_visible_ratio);
  ReplicaSpec spec;
  spec.media = medium.model;
  spec.mv = params.mv;
  spec.ml = params.ml;
  spec.mrv = params.mrv;
  spec.mrl = params.mrl;
  // The periodic audit is the detection process; its mean detection latency
  // (half the interval) is exactly the MDL OfflineReplicaParams derives.
  spec.scrub = audits_per_year > 0.0
                   ? ScrubPolicy::Periodic(Duration::Years(1.0 / audits_per_year))
                   : ScrubPolicy::None();
  return spec;
}

ReplicaSpec SpecFromParams(const FaultParams& params, std::string media) {
  ReplicaSpec spec;
  spec.media = std::move(media);
  spec.mv = params.mv;
  spec.ml = params.ml;
  spec.mrv = params.mrv;
  spec.mrl = params.mrl;
  spec.scrub = params.mdl.is_infinite() ? ScrubPolicy::None()
                                        : ScrubPolicy::Exponential(params.mdl);
  return spec;
}

}  // namespace longstore
