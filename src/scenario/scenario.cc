#include "src/scenario/scenario.h"

#include <cmath>
#include <stdexcept>

#include "src/storage/config.h"

namespace longstore {

// --- ReplicaSpec -----------------------------------------------------------

ReplicaSpec& ReplicaSpec::Media(std::string name) {
  media = std::move(name);
  return *this;
}

ReplicaSpec& ReplicaSpec::FaultTimes(Duration visible_mean, Duration latent_mean) {
  mv = visible_mean;
  ml = latent_mean;
  return *this;
}

ReplicaSpec& ReplicaSpec::Weibull(double shape) {
  fault_distribution = FaultDistribution::kWeibull;
  weibull_shape = shape;
  return *this;
}

ReplicaSpec& ReplicaSpec::InitialAge(Duration age) {
  initial_age_hours = age.hours();
  return *this;
}

ReplicaSpec& ReplicaSpec::RepairTimes(Duration visible_repair, Duration latent_repair) {
  mrv = visible_repair;
  mrl = latent_repair;
  return *this;
}

ReplicaSpec& ReplicaSpec::DeterministicRepair() {
  repair_distribution = RepairDistribution::kDeterministic;
  return *this;
}

ReplicaSpec& ReplicaSpec::ScrubWith(ScrubPolicy policy) {
  scrub = policy;
  return *this;
}

ReplicaSpec& ReplicaSpec::ScrubEvery(Duration interval) {
  scrub = ScrubPolicy::Periodic(interval);
  return *this;
}

ReplicaSpec& ReplicaSpec::ScrubPhase(Duration phase) {
  scrub_phase_hours = phase.hours();
  return *this;
}

bool operator==(const ReplicaSpec& a, const ReplicaSpec& b) {
  return a.media == b.media && a.fault_distribution == b.fault_distribution &&
         a.mv == b.mv && a.ml == b.ml && a.weibull_shape == b.weibull_shape &&
         a.initial_age_hours == b.initial_age_hours &&
         a.repair_distribution == b.repair_distribution && a.mrv == b.mrv &&
         a.mrl == b.mrl && a.scrub.kind == b.scrub.kind &&
         a.scrub.interval == b.scrub.interval &&
         a.scrub_phase_hours == b.scrub_phase_hours;
}

std::optional<std::string> ReplicaSpec::Validate() const {
  if (!(mv.hours() > 0.0)) {
    return "mv must be positive (Duration::Infinite() means no visible faults)";
  }
  if (!(ml.hours() > 0.0)) {
    return "ml must be positive (Duration::Infinite() means no latent faults)";
  }
  if (mrv.is_negative() || mrl.is_negative() || mrv.is_infinite() ||
      mrl.is_infinite() || std::isnan(mrv.hours()) || std::isnan(mrl.hours())) {
    return "repair times must be finite and non-negative";
  }
  if (fault_distribution == FaultDistribution::kWeibull &&
      (!(weibull_shape > 0.0) || std::isinf(weibull_shape))) {
    return "weibull_shape must be finite and positive";
  }
  if (!(initial_age_hours >= 0.0) || std::isinf(initial_age_hours)) {
    return "initial age must be finite and non-negative";
  }
  if (fault_distribution == FaultDistribution::kExponential &&
      initial_age_hours > 0.0) {
    return "initial age is meaningless on an exponential replica (the "
           "memoryless fault clock cannot see it); use a Weibull fault "
           "distribution or drop the age";
  }
  if (scrub.kind != ScrubPolicy::Kind::kNone &&
      (!(scrub.interval.hours() > 0.0) || scrub.interval.is_infinite())) {
    // An infinite interval would feed NaN into the periodic tick arithmetic
    // and "never" into ScheduleAfter (which requires finite times).
    return "scrub interval must be finite and positive";
  }
  if (std::isnan(scrub_phase_hours) || std::isinf(scrub_phase_hours)) {
    return "scrub phase must be finite (negative means automatic)";
  }
  return std::nullopt;
}

// --- Scenario --------------------------------------------------------------

namespace {

std::string ReplicaError(int index, const std::string& error) {
  return "replica " + std::to_string(index) + ": " + error;
}

}  // namespace

std::optional<std::string> Scenario::Validate() const {
  if (replicas.empty()) {
    return "replica_count must be >= 1";
  }
  if (required_intact < 1 || required_intact > replica_count()) {
    return "required_intact must lie in [1, replica_count]";
  }
  if (!(alpha > 0.0) || alpha > 1.0) {
    return "alpha must lie in (0, 1]";
  }
  for (int i = 0; i < replica_count(); ++i) {
    const ReplicaSpec& spec = replicas[static_cast<size_t>(i)];
    if (auto error = spec.Validate()) {
      return ReplicaError(i, *error);
    }
    if (spec.fault_distribution == FaultDistribution::kWeibull) {
      if (alpha < 1.0) {
        return ReplicaError(
            i,
            "hazard-multiplier correlation (alpha < 1) requires exponential "
            "faults; Weibull fault clocks are age-based and cannot be rescaled "
            "memorylessly");
      }
      if (convention == RateConvention::kPaper) {
        return ReplicaError(
            i, "Weibull faults are only supported under the physical convention");
      }
    }
    if (record_scrub_passes && spec.scrub.kind != ScrubPolicy::Kind::kPeriodic) {
      return ReplicaError(i, "record_scrub_passes requires a periodic scrub policy");
    }
  }
  if (convention == RateConvention::kPaper) {
    for (int i = 1; i < replica_count(); ++i) {
      if (!(replicas[static_cast<size_t>(i)] == replicas[0])) {
        return "the paper rate convention models system-level fault clocks at "
               "single-unit rates and cannot express a heterogeneous fleet "
               "(replica " +
               std::to_string(i) +
               " differs from replica 0); use the physical convention";
      }
    }
    if (replicas[0].scrub.kind == ScrubPolicy::Kind::kPeriodic) {
      return "the paper rate convention pairs with memoryless detection; use an "
             "exponential or on-access scrub policy (or the physical convention)";
    }
    if (!common_mode.empty()) {
      return "common-mode sources are only supported under the physical convention";
    }
  }
  for (const CommonModeSource& source : common_mode) {
    if (!(source.event_rate.per_hour() > 0.0) ||
        std::isinf(source.event_rate.per_hour())) {
      // An infinite rate means a zero mean interval: the source would fire
      // an unbounded event storm at time zero.
      return "common-mode source '" + source.name +
             "' needs a positive, finite event rate";
    }
    if (source.hit_probability < 0.0 || source.hit_probability > 1.0 ||
        source.visible_fraction < 0.0 || source.visible_fraction > 1.0) {
      return "common-mode source '" + source.name +
             "' probabilities must lie in [0, 1]";
    }
    for (int member : source.members) {
      if (member < 0 || member >= replica_count()) {
        return "common-mode source '" + source.name + "' has an out-of-range member";
      }
    }
  }
  return std::nullopt;
}

bool Scenario::IsHomogeneous() const {
  for (size_t i = 1; i < replicas.size(); ++i) {
    if (!(replicas[i] == replicas[0])) {
      return false;
    }
  }
  return true;
}

Scenario Scenario::FromLegacy(const StorageSimConfig& config) {
  Scenario scenario;
  scenario.required_intact = config.required_intact;
  scenario.alpha = config.params.alpha;
  scenario.convention = config.convention;
  scenario.scrub_staggered = config.scrub_staggered;
  scenario.record_scrub_passes = config.record_scrub_passes;
  scenario.visible_fault_surfaces_latent = config.visible_fault_surfaces_latent;
  scenario.common_mode = config.common_mode;

  const bool weibull =
      config.fault_distribution == StorageSimConfig::FaultDistribution::kWeibull;
  ReplicaSpec base;
  base.fault_distribution =
      weibull ? FaultDistribution::kWeibull : FaultDistribution::kExponential;
  base.mv = config.params.mv;
  base.ml = config.params.ml;
  // The legacy engine ignores the shape on exponential fleets; canonicalize
  // so behaviorally identical configs get identical scenario identities.
  base.weibull_shape = weibull ? config.weibull_shape : 1.0;
  base.repair_distribution =
      config.repair_distribution == StorageSimConfig::RepairDistribution::kDeterministic
          ? RepairDistribution::kDeterministic
          : RepairDistribution::kExponential;
  base.mrv = config.params.mrv;
  base.mrl = config.params.mrl;
  base.scrub = config.scrub;
  base.scrub_phase_hours = -1.0;  // automatic, matching the legacy stagger

  const int count = config.replica_count;
  // The conversion must stay total even on configs that would fail
  // Validate() (sweep specs convert cells before the runner's validation
  // pass reports the clean error): only consume the age vector when it is
  // well-formed, and never index past it.
  const bool ages_usable =
      weibull && static_cast<int>(config.initial_age_hours.size()) == count;
  scenario.replicas.reserve(count > 0 ? static_cast<size_t>(count) : 0);
  for (int i = 0; i < count; ++i) {
    ReplicaSpec spec = base;
    // Ages only exist for Weibull clocks (the legacy engine ignored them on
    // exponential fleets; dropping them here is behavior-preserving).
    if (ages_usable) {
      spec.initial_age_hours = config.initial_age_hours[static_cast<size_t>(i)];
    }
    scenario.replicas.push_back(std::move(spec));
  }
  return scenario;
}

StorageSimConfig Scenario::ToLegacy() const {
  auto reject = [](int replica, const std::string& why) {
    throw std::invalid_argument("Scenario::ToLegacy: replica " +
                                std::to_string(replica) + ": " + why);
  };
  if (replicas.empty()) {
    throw std::invalid_argument("Scenario::ToLegacy: the scenario has no replicas");
  }
  // The contract is FromLegacy(ToLegacy(s)) == s, canonical-JSON-exactly.
  // StorageSimConfig can express one spec shared by the fleet plus a
  // per-replica initial-age vector; everything else per-replica — and every
  // field FromLegacy normalizes away — must already be in canonical form.
  const ReplicaSpec& first = replicas[0];
  const bool weibull = first.fault_distribution == FaultDistribution::kWeibull;
  bool any_age = false;
  for (size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaSpec& spec = replicas[i];
    const int index = static_cast<int>(i);
    if (spec.media != "replica") {
      reject(index, "media label \"" + spec.media +
                        "\" is not representable in StorageSimConfig "
                        "(FromLegacy labels every replica \"replica\")");
    }
    // Only the canonical automatic marker round-trips: FromLegacy always
    // emits -1.0, so an explicit phase (>= 0) *and* any other negative
    // spelling would come back different.
    if (spec.scrub_phase_hours != -1.0) {
      reject(index,
             spec.scrub_phase_hours >= 0.0
                 ? "an explicit scrub phase is not representable in "
                   "StorageSimConfig (the flat config only expresses the "
                   "automatic stagger)"
                 : "a non-canonical automatic scrub phase cannot round-trip "
                   "(FromLegacy spells automatic as -1)");
    }
    if (spec.fault_distribution == FaultDistribution::kExponential) {
      if (spec.weibull_shape != 1.0) {
        reject(index,
               "weibull_shape on an exponential replica cannot round-trip "
               "(FromLegacy canonicalizes it to 1)");
      }
      if (spec.initial_age_hours != 0.0) {
        reject(index,
               "an initial age on an exponential replica cannot round-trip "
               "(FromLegacy drops ages on exponential fleets)");
      }
    }
    any_age = any_age || spec.initial_age_hours != 0.0;
    // Per-replica ages are the one heterogeneity the flat config carries;
    // compare everything else field-wise against replica 0.
    ReplicaSpec lhs = spec;
    ReplicaSpec rhs = first;
    lhs.initial_age_hours = 0.0;
    rhs.initial_age_hours = 0.0;
    if (!(lhs == rhs)) {
      reject(index,
             "differs from replica 0 beyond its initial age; StorageSimConfig "
             "only describes homogeneous fleets");
    }
  }

  StorageSimConfig config;
  config.replica_count = replica_count();
  config.required_intact = required_intact;
  config.params.mv = first.mv;
  config.params.ml = first.ml;
  config.params.mrv = first.mrv;
  config.params.mrl = first.mrl;
  // FromLegacy ignores mdl (detection is the scrub policy); emit the
  // policy's analytic latency so legacy closed-form call sites that read
  // params.mdl see a value consistent with the simulated detection process.
  config.params.mdl = first.scrub.MeanDetectionLatency();
  config.params.alpha = alpha;
  config.scrub = first.scrub;
  config.repair_distribution = first.repair_distribution;
  config.fault_distribution = first.fault_distribution;
  config.weibull_shape = first.weibull_shape;
  config.convention = convention;
  config.scrub_staggered = scrub_staggered;
  config.record_scrub_passes = record_scrub_passes;
  config.visible_fault_surfaces_latent = visible_fault_surfaces_latent;
  config.common_mode = common_mode;
  if (weibull && any_age) {
    config.initial_age_hours.reserve(replicas.size());
    for (const ReplicaSpec& spec : replicas) {
      config.initial_age_hours.push_back(spec.initial_age_hours);
    }
  }
  return config;
}

// --- ScenarioBuilder -------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::Replicas(int count, ReplicaSpec spec) {
  if (count < 0) {
    throw std::invalid_argument("ScenarioBuilder::Replicas: count must be >= 0");
  }
  for (int i = 0; i < count; ++i) {
    scenario_.replicas.push_back(spec);
  }
  return *this;
}

ScenarioBuilder& ScenarioBuilder::AddReplica(ReplicaSpec spec) {
  scenario_.replicas.push_back(std::move(spec));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::RequiredIntact(int required_intact) {
  scenario_.required_intact = required_intact;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Correlation(double alpha) {
  scenario_.alpha = alpha;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::Convention(RateConvention convention) {
  scenario_.convention = convention;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::StaggeredScrubs() {
  scenario_.scrub_staggered = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::AlignedScrubs() {
  scenario_.scrub_staggered = false;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::RecordScrubPasses() {
  scenario_.record_scrub_passes = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::VisibleFaultSurfacesLatent() {
  scenario_.visible_fault_surfaces_latent = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CommonMode(CommonModeSource source) {
  scenario_.common_mode.push_back(std::move(source));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::CommonModeAll(std::string name, Rate event_rate,
                                                double hit_probability,
                                                double visible_fraction) {
  CommonModeSource source;
  source.name = std::move(name);
  source.event_rate = event_rate;
  source.hit_probability = hit_probability;
  source.visible_fraction = visible_fraction;
  all_replica_sources_.push_back(scenario_.common_mode.size());
  scenario_.common_mode.push_back(std::move(source));
  return *this;
}

Scenario ScenarioBuilder::Build() const {
  Scenario scenario = scenario_;
  for (const size_t index : all_replica_sources_) {
    CommonModeSource& source = scenario.common_mode[index];
    source.members.clear();
    for (int i = 0; i < scenario.replica_count(); ++i) {
      source.members.push_back(i);
    }
  }
  if (auto error = scenario.Validate()) {
    throw std::invalid_argument("Scenario: " + *error);
  }
  return scenario;
}

}  // namespace longstore
