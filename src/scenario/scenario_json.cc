// Canonical JSON serialization, strict parsing, and identity hashing for
// Scenario. The canonical form is the scenario's *identity*: fixed key
// order, every field emitted, compact separators, round-trip-exact doubles.
// CanonicalHash is FNV-1a over that string, so two scenarios hash equal iff
// they are field-wise identical — the property the sweep engine's
// kScenarioDerived seed mode and sharded fan-out rely on.
//
// The JSON mechanics (emission helpers, strict parser, ObjectReader) live in
// src/util/json.h, shared with the shard protocol (src/shard/), which embeds
// scenarios as nested objects inside its own canonical documents.

#include <string>

#include "src/scenario/scenario.h"
#include "src/util/json.h"

namespace longstore {
namespace {

constexpr char kContext[] = "Scenario::FromJson";

const char* FaultDistributionName(FaultDistribution d) {
  return d == FaultDistribution::kWeibull ? "weibull" : "exponential";
}

const char* RepairDistributionName(RepairDistribution d) {
  return d == RepairDistribution::kDeterministic ? "deterministic" : "exponential";
}

const char* ScrubKindName(ScrubPolicy::Kind kind) {
  switch (kind) {
    case ScrubPolicy::Kind::kNone:
      return "none";
    case ScrubPolicy::Kind::kPeriodic:
      return "periodic";
    case ScrubPolicy::Kind::kExponential:
      return "exponential";
    case ScrubPolicy::Kind::kOnAccess:
      return "on_access";
  }
  return "none";
}

const char* ConventionName(RateConvention convention) {
  return convention == RateConvention::kPaper ? "paper" : "physical";
}

FaultDistribution ParseFaultDistribution(const std::string& name) {
  if (name == "exponential") {
    return FaultDistribution::kExponential;
  }
  if (name == "weibull") {
    return FaultDistribution::kWeibull;
  }
  json::Fail(kContext, "unknown fault_distribution \"" + name + "\"");
}

RepairDistribution ParseRepairDistribution(const std::string& name) {
  if (name == "exponential") {
    return RepairDistribution::kExponential;
  }
  if (name == "deterministic") {
    return RepairDistribution::kDeterministic;
  }
  json::Fail(kContext, "unknown repair_distribution \"" + name + "\"");
}

ScrubPolicy::Kind ParseScrubKind(const std::string& name) {
  if (name == "none") {
    return ScrubPolicy::Kind::kNone;
  }
  if (name == "periodic") {
    return ScrubPolicy::Kind::kPeriodic;
  }
  if (name == "exponential") {
    return ScrubPolicy::Kind::kExponential;
  }
  if (name == "on_access") {
    return ScrubPolicy::Kind::kOnAccess;
  }
  json::Fail(kContext, "unknown scrub_kind \"" + name + "\"");
}

RateConvention ParseConvention(const std::string& name) {
  if (name == "physical") {
    return RateConvention::kPhysical;
  }
  if (name == "paper") {
    return RateConvention::kPaper;
  }
  json::Fail(kContext, "unknown convention \"" + name + "\"");
}

}  // namespace

std::string Scenario::ToJson() const {
  using json::AppendDouble;
  using json::AppendEscaped;
  std::string out;
  out.reserve(256 + replicas.size() * 256);
  out += "{\"version\":1,\"required_intact\":";
  AppendDouble(out, static_cast<double>(required_intact));
  out += ",\"alpha\":";
  AppendDouble(out, alpha);
  out += ",\"convention\":\"";
  out += ConventionName(convention);
  out += "\",\"scrub_staggered\":";
  out += scrub_staggered ? "true" : "false";
  out += ",\"record_scrub_passes\":";
  out += record_scrub_passes ? "true" : "false";
  out += ",\"visible_fault_surfaces_latent\":";
  out += visible_fault_surfaces_latent ? "true" : "false";
  out += ",\"replicas\":[";
  for (size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaSpec& spec = replicas[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"media\":";
    AppendEscaped(out, spec.media);
    out += ",\"fault_distribution\":\"";
    out += FaultDistributionName(spec.fault_distribution);
    out += "\",\"mv_hours\":";
    AppendDouble(out, spec.mv.hours());
    out += ",\"ml_hours\":";
    AppendDouble(out, spec.ml.hours());
    out += ",\"weibull_shape\":";
    AppendDouble(out, spec.weibull_shape);
    out += ",\"initial_age_hours\":";
    AppendDouble(out, spec.initial_age_hours);
    out += ",\"repair_distribution\":\"";
    out += RepairDistributionName(spec.repair_distribution);
    out += "\",\"mrv_hours\":";
    AppendDouble(out, spec.mrv.hours());
    out += ",\"mrl_hours\":";
    AppendDouble(out, spec.mrl.hours());
    out += ",\"scrub_kind\":\"";
    out += ScrubKindName(spec.scrub.kind);
    out += "\",\"scrub_interval_hours\":";
    AppendDouble(out, spec.scrub.interval.hours());
    out += ",\"scrub_phase_hours\":";
    AppendDouble(out, spec.scrub_phase_hours);
    out += '}';
  }
  out += "],\"common_mode\":[";
  for (size_t s = 0; s < common_mode.size(); ++s) {
    const CommonModeSource& source = common_mode[s];
    if (s > 0) {
      out += ',';
    }
    out += "{\"name\":";
    AppendEscaped(out, source.name);
    out += ",\"events_per_hour\":";
    AppendDouble(out, source.event_rate.per_hour());
    out += ",\"hit_probability\":";
    AppendDouble(out, source.hit_probability);
    out += ",\"visible_fraction\":";
    AppendDouble(out, source.visible_fraction);
    out += ",\"members\":[";
    for (size_t m = 0; m < source.members.size(); ++m) {
      if (m > 0) {
        out += ',';
      }
      AppendDouble(out, static_cast<double>(source.members[m]));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Scenario Scenario::FromJsonValue(const json::Value& root) {
  json::ObjectReader reader(root, "scenario", kContext);
  const int version = reader.GetInt("version");
  if (version != 1) {
    json::Fail(kContext, "unsupported version " + std::to_string(version));
  }

  Scenario scenario;
  scenario.required_intact = reader.GetInt("required_intact");
  scenario.alpha = reader.GetNumber("alpha");
  scenario.convention = ParseConvention(reader.GetString("convention"));
  scenario.scrub_staggered = reader.GetBool("scrub_staggered");
  scenario.record_scrub_passes = reader.GetBool("record_scrub_passes");
  scenario.visible_fault_surfaces_latent =
      reader.GetBool("visible_fault_surfaces_latent");

  for (const json::Value& entry : reader.GetArray("replicas")) {
    json::ObjectReader replica(entry, "replica", kContext);
    ReplicaSpec spec;
    spec.media = replica.GetString("media");
    spec.fault_distribution =
        ParseFaultDistribution(replica.GetString("fault_distribution"));
    spec.mv = Duration::Hours(replica.GetNumber("mv_hours"));
    spec.ml = Duration::Hours(replica.GetNumber("ml_hours"));
    spec.weibull_shape = replica.GetNumber("weibull_shape");
    spec.initial_age_hours = replica.GetNumber("initial_age_hours");
    spec.repair_distribution =
        ParseRepairDistribution(replica.GetString("repair_distribution"));
    spec.mrv = Duration::Hours(replica.GetNumber("mrv_hours"));
    spec.mrl = Duration::Hours(replica.GetNumber("mrl_hours"));
    spec.scrub.kind = ParseScrubKind(replica.GetString("scrub_kind"));
    spec.scrub.interval = Duration::Hours(replica.GetNumber("scrub_interval_hours"));
    spec.scrub_phase_hours = replica.GetNumber("scrub_phase_hours");
    replica.Finish();
    scenario.replicas.push_back(std::move(spec));
  }

  for (const json::Value& entry : reader.GetArray("common_mode")) {
    json::ObjectReader object(entry, "common_mode source", kContext);
    CommonModeSource source;
    source.name = object.GetString("name");
    source.event_rate = Rate::PerHour(object.GetNumber("events_per_hour"));
    source.hit_probability = object.GetNumber("hit_probability");
    source.visible_fraction = object.GetNumber("visible_fraction");
    for (const json::Value& member : object.GetArray("members")) {
      if (member.kind != json::Value::Kind::kNumber) {
        json::Fail(kContext, "common_mode members must be integers");
      }
      source.members.push_back(
          json::CheckedInt(member.number, "common_mode member", kContext));
    }
    object.Finish();
    scenario.common_mode.push_back(std::move(source));
  }

  reader.Finish();
  return scenario;
}

Scenario Scenario::FromJson(std::string_view json) {
  return FromJsonValue(json::Parse(json, kContext));
}

uint64_t Scenario::CanonicalHash() const { return json::Fnv1a64(ToJson()); }

}  // namespace longstore
