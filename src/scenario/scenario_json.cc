// Canonical JSON serialization, strict parsing, and identity hashing for
// Scenario. The canonical form is the scenario's *identity*: fixed key
// order, every field emitted, compact separators, round-trip-exact doubles.
// CanonicalHash is FNV-1a over that string, so two scenarios hash equal iff
// they are field-wise identical — the property the sweep engine's
// kScenarioDerived seed mode and sharded fan-out rely on.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/scenario/scenario.h"

namespace longstore {
namespace {

// --- emission --------------------------------------------------------------

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Round-trip-exact double: shortest %.17g form re-parses to the same bits.
// Infinities and NaN (not valid JSON numbers) are emitted as strings.
void AppendDouble(std::string& out, double v) {
  if (std::isinf(v)) {
    out += v > 0 ? "\"inf\"" : "\"-inf\"";
    return;
  }
  if (std::isnan(v)) {
    out += "\"nan\"";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

const char* FaultDistributionName(FaultDistribution d) {
  return d == FaultDistribution::kWeibull ? "weibull" : "exponential";
}

const char* RepairDistributionName(RepairDistribution d) {
  return d == RepairDistribution::kDeterministic ? "deterministic" : "exponential";
}

const char* ScrubKindName(ScrubPolicy::Kind kind) {
  switch (kind) {
    case ScrubPolicy::Kind::kNone:
      return "none";
    case ScrubPolicy::Kind::kPeriodic:
      return "periodic";
    case ScrubPolicy::Kind::kExponential:
      return "exponential";
    case ScrubPolicy::Kind::kOnAccess:
      return "on_access";
  }
  return "none";
}

const char* ConventionName(RateConvention convention) {
  return convention == RateConvention::kPaper ? "paper" : "physical";
}

// --- strict parser ---------------------------------------------------------
//
// A minimal JSON value tree: just enough for the Scenario schema. Object
// keys keep insertion order but are looked up by name; duplicate keys are
// an error (a duplicate would make the canonical form ambiguous).

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after the top-level value");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::invalid_argument("Scenario::FromJson: " + what + " (at byte " +
                                std::to_string(pos_) + ")");
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipWhitespace();
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue value;
        value.kind = JsonValue::Kind::kString;
        value.string = ParseString();
        return value;
      }
      default:
        break;
    }
    JsonValue value;
    if (ConsumeWord("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (ConsumeWord("null")) {
      value.kind = JsonValue::Kind::kNull;
      return value;
    }
    return ParseNumber();
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid \\u escape");
            }
          }
          // The canonical emitter only escapes control characters; decode
          // the BMP code point as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    SkipWhitespace();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      Fail("malformed number '" + token + "'");
    }
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return out;
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    if (Consume(']')) {
      return out;
    }
    while (true) {
      out.array.push_back(ParseValue());
      if (Consume(']')) {
        return out;
      }
      Expect(',');
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    if (Consume('}')) {
      return out;
    }
    while (true) {
      const std::string key = ParseString();
      if (out.Find(key) != nullptr) {
        Fail("duplicate key \"" + key + "\"");
      }
      Expect(':');
      out.object.emplace_back(key, ParseValue());
      if (Consume('}')) {
        return out;
      }
      Expect(',');
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// --- schema mapping --------------------------------------------------------

[[noreturn]] void SchemaFail(const std::string& what) {
  throw std::invalid_argument("Scenario::FromJson: " + what);
}

// A strict view over one object: every Get marks its key as consumed, and
// Finish() rejects unknown keys, so schema drift fails loudly instead of
// silently dropping a field (which would break the identity contract).
class ObjectReader {
 public:
  ObjectReader(const JsonValue& value, std::string where)
      : value_(value), where_(std::move(where)) {
    if (value.kind != JsonValue::Kind::kObject) {
      SchemaFail(where_ + " must be an object");
    }
  }

  const JsonValue& Get(const std::string& key, JsonValue::Kind kind) {
    const JsonValue* found = value_.Find(key);
    if (found == nullptr) {
      SchemaFail(where_ + " is missing key \"" + key + "\"");
    }
    consumed_.push_back(key);
    if (found->kind != kind &&
        !(kind == JsonValue::Kind::kNumber &&
          found->kind == JsonValue::Kind::kString)) {
      SchemaFail(where_ + " key \"" + key + "\" has the wrong type");
    }
    return *found;
  }

  double GetNumber(const std::string& key) {
    const JsonValue& v = Get(key, JsonValue::Kind::kNumber);
    if (v.kind == JsonValue::Kind::kString) {
      // "inf" / "-inf" / "nan": the canonical spellings for non-finite
      // doubles (JSON has no literal for them).
      if (v.string == "inf") {
        return std::numeric_limits<double>::infinity();
      }
      if (v.string == "-inf") {
        return -std::numeric_limits<double>::infinity();
      }
      if (v.string == "nan") {
        return std::numeric_limits<double>::quiet_NaN();
      }
      SchemaFail(where_ + " key \"" + key + "\" has a non-numeric string value");
    }
    return v.number;
  }

  std::string GetString(const std::string& key) {
    return Get(key, JsonValue::Kind::kString).string;
  }

  bool GetBool(const std::string& key) {
    return Get(key, JsonValue::Kind::kBool).boolean;
  }

  const std::vector<JsonValue>& GetArray(const std::string& key) {
    return Get(key, JsonValue::Kind::kArray).array;
  }

  void Finish() {
    for (const auto& [key, unused] : value_.object) {
      bool known = false;
      for (const std::string& c : consumed_) {
        if (c == key) {
          known = true;
          break;
        }
      }
      if (!known) {
        SchemaFail(where_ + " has unknown key \"" + key + "\"");
      }
    }
  }

 private:
  const JsonValue& value_;
  std::string where_;
  std::vector<std::string> consumed_;
};

FaultDistribution ParseFaultDistribution(const std::string& name) {
  if (name == "exponential") {
    return FaultDistribution::kExponential;
  }
  if (name == "weibull") {
    return FaultDistribution::kWeibull;
  }
  SchemaFail("unknown fault_distribution \"" + name + "\"");
}

RepairDistribution ParseRepairDistribution(const std::string& name) {
  if (name == "exponential") {
    return RepairDistribution::kExponential;
  }
  if (name == "deterministic") {
    return RepairDistribution::kDeterministic;
  }
  SchemaFail("unknown repair_distribution \"" + name + "\"");
}

ScrubPolicy::Kind ParseScrubKind(const std::string& name) {
  if (name == "none") {
    return ScrubPolicy::Kind::kNone;
  }
  if (name == "periodic") {
    return ScrubPolicy::Kind::kPeriodic;
  }
  if (name == "exponential") {
    return ScrubPolicy::Kind::kExponential;
  }
  if (name == "on_access") {
    return ScrubPolicy::Kind::kOnAccess;
  }
  SchemaFail("unknown scrub_kind \"" + name + "\"");
}

RateConvention ParseConvention(const std::string& name) {
  if (name == "physical") {
    return RateConvention::kPhysical;
  }
  if (name == "paper") {
    return RateConvention::kPaper;
  }
  SchemaFail("unknown convention \"" + name + "\"");
}

int CheckedInt(double value, const std::string& what) {
  // Range-check before the cast: converting a double outside int's range
  // (or NaN/inf, which GetNumber can produce from the "inf"/"nan" string
  // spellings) is undefined behavior, and FromJson ingests cross-process
  // input that must fail cleanly instead.
  constexpr double kIntMin = static_cast<double>(std::numeric_limits<int>::min());
  constexpr double kIntMax = static_cast<double>(std::numeric_limits<int>::max());
  if (!(value >= kIntMin && value <= kIntMax)) {
    SchemaFail(what + " is out of integer range");
  }
  const int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) {
    SchemaFail(what + " must be an integer");
  }
  return as_int;
}

}  // namespace

std::string Scenario::ToJson() const {
  std::string out;
  out.reserve(256 + replicas.size() * 256);
  out += "{\"version\":1,\"required_intact\":";
  AppendDouble(out, static_cast<double>(required_intact));
  out += ",\"alpha\":";
  AppendDouble(out, alpha);
  out += ",\"convention\":\"";
  out += ConventionName(convention);
  out += "\",\"scrub_staggered\":";
  out += scrub_staggered ? "true" : "false";
  out += ",\"record_scrub_passes\":";
  out += record_scrub_passes ? "true" : "false";
  out += ",\"visible_fault_surfaces_latent\":";
  out += visible_fault_surfaces_latent ? "true" : "false";
  out += ",\"replicas\":[";
  for (size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaSpec& spec = replicas[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"media\":";
    AppendEscaped(out, spec.media);
    out += ",\"fault_distribution\":\"";
    out += FaultDistributionName(spec.fault_distribution);
    out += "\",\"mv_hours\":";
    AppendDouble(out, spec.mv.hours());
    out += ",\"ml_hours\":";
    AppendDouble(out, spec.ml.hours());
    out += ",\"weibull_shape\":";
    AppendDouble(out, spec.weibull_shape);
    out += ",\"initial_age_hours\":";
    AppendDouble(out, spec.initial_age_hours);
    out += ",\"repair_distribution\":\"";
    out += RepairDistributionName(spec.repair_distribution);
    out += "\",\"mrv_hours\":";
    AppendDouble(out, spec.mrv.hours());
    out += ",\"mrl_hours\":";
    AppendDouble(out, spec.mrl.hours());
    out += ",\"scrub_kind\":\"";
    out += ScrubKindName(spec.scrub.kind);
    out += "\",\"scrub_interval_hours\":";
    AppendDouble(out, spec.scrub.interval.hours());
    out += ",\"scrub_phase_hours\":";
    AppendDouble(out, spec.scrub_phase_hours);
    out += '}';
  }
  out += "],\"common_mode\":[";
  for (size_t s = 0; s < common_mode.size(); ++s) {
    const CommonModeSource& source = common_mode[s];
    if (s > 0) {
      out += ',';
    }
    out += "{\"name\":";
    AppendEscaped(out, source.name);
    out += ",\"events_per_hour\":";
    AppendDouble(out, source.event_rate.per_hour());
    out += ",\"hit_probability\":";
    AppendDouble(out, source.hit_probability);
    out += ",\"visible_fraction\":";
    AppendDouble(out, source.visible_fraction);
    out += ",\"members\":[";
    for (size_t m = 0; m < source.members.size(); ++m) {
      if (m > 0) {
        out += ',';
      }
      AppendDouble(out, static_cast<double>(source.members[m]));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Scenario Scenario::FromJson(std::string_view json) {
  const JsonValue root = JsonParser(json).Parse();
  ObjectReader reader(root, "scenario");
  const int version = CheckedInt(reader.GetNumber("version"), "version");
  if (version != 1) {
    SchemaFail("unsupported version " + std::to_string(version));
  }

  Scenario scenario;
  scenario.required_intact =
      CheckedInt(reader.GetNumber("required_intact"), "required_intact");
  scenario.alpha = reader.GetNumber("alpha");
  scenario.convention = ParseConvention(reader.GetString("convention"));
  scenario.scrub_staggered = reader.GetBool("scrub_staggered");
  scenario.record_scrub_passes = reader.GetBool("record_scrub_passes");
  scenario.visible_fault_surfaces_latent =
      reader.GetBool("visible_fault_surfaces_latent");

  for (const JsonValue& entry : reader.GetArray("replicas")) {
    ObjectReader replica(entry, "replica");
    ReplicaSpec spec;
    spec.media = replica.GetString("media");
    spec.fault_distribution =
        ParseFaultDistribution(replica.GetString("fault_distribution"));
    spec.mv = Duration::Hours(replica.GetNumber("mv_hours"));
    spec.ml = Duration::Hours(replica.GetNumber("ml_hours"));
    spec.weibull_shape = replica.GetNumber("weibull_shape");
    spec.initial_age_hours = replica.GetNumber("initial_age_hours");
    spec.repair_distribution =
        ParseRepairDistribution(replica.GetString("repair_distribution"));
    spec.mrv = Duration::Hours(replica.GetNumber("mrv_hours"));
    spec.mrl = Duration::Hours(replica.GetNumber("mrl_hours"));
    spec.scrub.kind = ParseScrubKind(replica.GetString("scrub_kind"));
    spec.scrub.interval = Duration::Hours(replica.GetNumber("scrub_interval_hours"));
    spec.scrub_phase_hours = replica.GetNumber("scrub_phase_hours");
    replica.Finish();
    scenario.replicas.push_back(std::move(spec));
  }

  for (const JsonValue& entry : reader.GetArray("common_mode")) {
    ObjectReader object(entry, "common_mode source");
    CommonModeSource source;
    source.name = object.GetString("name");
    source.event_rate = Rate::PerHour(object.GetNumber("events_per_hour"));
    source.hit_probability = object.GetNumber("hit_probability");
    source.visible_fraction = object.GetNumber("visible_fraction");
    for (const JsonValue& member : object.GetArray("members")) {
      if (member.kind != JsonValue::Kind::kNumber) {
        SchemaFail("common_mode members must be integers");
      }
      source.members.push_back(CheckedInt(member.number, "common_mode member"));
    }
    object.Finish();
    scenario.common_mode.push_back(std::move(source));
  }

  reader.Finish();
  return scenario;
}

uint64_t Scenario::CanonicalHash() const {
  const std::string canonical = ToJson();
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace longstore
