// Media-aware ReplicaSpec factories: the bridge from the drive catalog
// (src/drives) to per-replica scenario specs. These wrap the §6.1/§6.2
// parameter derivations (OnlineReplicaParams / OfflineReplicaParams) so a
// mixed disk/tape fleet is one builder expression:
//
//   ScenarioBuilder()
//       .Replicas(2, DiskSpec(SeagateBarracuda200Gb(),
//                             ScrubPolicy::PeriodicPerYear(52.0)))
//       .AddReplica(TapeSpec(Lto3TapeCartridge(), /*audits_per_year=*/4.0))
//       .Build();

#ifndef LONGSTORE_SRC_SCENARIO_MEDIA_H_
#define LONGSTORE_SRC_SCENARIO_MEDIA_H_

#include "src/drives/drive_specs.h"
#include "src/drives/offline_media.h"
#include "src/model/fault_params.h"
#include "src/model/strategies.h"
#include "src/scenario/scenario.h"

namespace longstore {

// An on-line replica on `drive`: intrinsic MV from the spec's five-year
// fault probability, ML = MV / latent_to_visible_ratio (Schwarz et al.'s
// 5x), repair at the drive's full-capacity rebuild time, audited by `scrub`.
ReplicaSpec DiskSpec(const DriveSpec& drive, ScrubPolicy scrub,
                     double latent_to_visible_ratio = 5.0);

// An off-line (vaulted) replica on `medium`, audited `audits_per_year`
// times: each audit pays retrieval + mount + full read and risks handling
// faults (which inflate the visible-fault rate, §6.2), repair pays the same
// round trip, and detection is the periodic audit. audits_per_year == 0
// models write-and-forget (no detection process at all).
ReplicaSpec TapeSpec(const DriveSpec& medium, double audits_per_year,
                     const OfflineHandlingModel& handling = OfflineHandlingModel::Defaults(),
                     double latent_to_visible_ratio = 5.0);

// Generic adapter: a ReplicaSpec from already-derived effective FaultParams
// (threat-profile compositions, planner-derived options). `params.mdl` is
// realized as an exponential scrub with mean interval MDL — the memoryless
// detection process the CTMC models exactly; infinite MDL means no scrub.
// `params.alpha` is scenario-level and therefore ignored here.
ReplicaSpec SpecFromParams(const FaultParams& params, std::string media = "replica");

}  // namespace longstore

#endif  // LONGSTORE_SRC_SCENARIO_MEDIA_H_
