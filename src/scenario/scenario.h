// Composable system-description API: one Scenario type describes the whole
// archive — a ReplicaSpec per replica (media, fault distribution, repair,
// scrub cadence, initial age) plus the shared structure (redundancy
// threshold, hazard-multiplier correlation, rate convention, common-mode
// sources) — and every subsystem consumes it:
//
//   * the discrete-event engine (src/storage) resolves the specs to flat
//     per-replica arrays at construction and never touches them in the event
//     loop (the zero-allocation hot path is preserved);
//   * the sweep engine (src/sweep) builds grids of Scenarios whose axes may
//     mutate any replica's field, not just global knobs;
//   * the exact CTMC bridge (src/scenario/scenario_ctmc.h) scores the
//     scenarios it can model and rejects the rest with a precise reason;
//   * the rare-event tuner (src/rare) and the planner (src/planner) accept
//     Scenarios directly.
//
// The paper's §4–§6 argument is that real archives are *not* fleets of
// identical, independent units: they mix media (disk + tape), ages (batch
// vs rolling procurement), scrub cadences and administrative domains.
// StorageSimConfig could only describe a homogeneous fleet; Scenario makes
// the heterogeneous ones first-class. StorageSimConfig remains as a thin
// legacy layer: Scenario::FromLegacy(config) is bit-identical to the
// pre-Scenario engine for every homogeneous configuration.
//
// Scenarios are serializable (ToJson / FromJson round-trips exactly) and
// carry a canonical identity hash (CanonicalHash), so sweep shards and
// rare-event pilot runs can ship scenarios across processes and re-derive
// the same deterministic trial streams. See src/scenario/README.md.

#ifndef LONGSTORE_SRC_SCENARIO_SCENARIO_H_
#define LONGSTORE_SRC_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/model/replica_ctmc.h"  // RateConvention
#include "src/model/strategies.h"    // ScrubPolicy
#include "src/util/units.h"

namespace longstore {

namespace json {
struct Value;  // parsed JSON tree (src/util/json.h)
}

struct StorageSimConfig;  // legacy flat config (src/storage/config.h)

// How a replica's fault clocks are distributed.
enum class FaultDistribution {
  kExponential,
  kWeibull,  // age-based; models the bathtub curve (§6.5 hardware aging).
};

// How a replica's repair durations are distributed.
enum class RepairDistribution {
  kExponential,   // matches the CTMC solvers exactly
  kDeterministic, // fixed rebuild time (physical drive re-copy)
};

// A shared component whose failure strikes several replicas at once: a power
// circuit, a cooling loop, a SCSI controller, an administrative domain, a
// geographic site (§4.2, §6.5; Talagala's disk-farm observations). Events
// arrive as a Poisson process; each event independently hits each member.
struct CommonModeSource {
  std::string name;
  Rate event_rate;
  std::vector<int> members;      // replica indices
  double hit_probability = 1.0;  // chance each member is affected per event
  double visible_fraction = 1.0; // affected member suffers visible (else latent) fault
};

// Everything that can differ between two replicas of the same archive: the
// medium, the fault process (distribution, means, shape, initial age), the
// repair process, and the audit cadence. Fluent setters return *this so
// specs compose inline inside ScenarioBuilder calls, e.g.
//   ReplicaSpec().FaultTimes(mv, ml).ScrubEvery(Duration::Hours(720)).
struct ReplicaSpec {
  // Display/serialization label for the medium ("ST3200822A", "LTO-3", ...).
  // Carried through JSON and sweep tables; part of the canonical identity.
  std::string media = "replica";

  FaultDistribution fault_distribution = FaultDistribution::kExponential;
  Duration mv = Duration::Infinite();  // mean time to a visible fault
  Duration ml = Duration::Infinite();  // mean time to a latent fault
  // Weibull shape for both fault kinds; < 1 infant mortality, > 1 wear-out.
  // Scales are derived so the means match mv / ml. Meaningful only under
  // FaultDistribution::kWeibull (canonically 1.0 otherwise).
  double weibull_shape = 1.0;
  // Hardware age at mission start (hours). Models same-batch fleets sitting
  // at the same point of the bathtub curve (§6.5). Only a Weibull fault
  // clock can see age; a non-zero value on an exponential replica is a
  // validation error (the memoryless clock would silently ignore it).
  double initial_age_hours = 0.0;

  RepairDistribution repair_distribution = RepairDistribution::kExponential;
  Duration mrv = Duration::Zero();  // mean time to repair a visible fault
  Duration mrl = Duration::Zero();  // mean time to repair a detected latent fault

  // This replica's audit policy. Each replica runs its own detection
  // process; a mixed fleet can scrub the disks weekly and audit the tape
  // quarterly.
  ScrubPolicy scrub = ScrubPolicy::None();
  // Explicit periodic-scrub phase offset (hours). Negative (the default)
  // means automatic: staggered by replica index when the scenario's
  // scrub_staggered flag is set, else aligned at zero.
  double scrub_phase_hours = -1.0;

  // --- fluent setters -----------------------------------------------------
  ReplicaSpec& Media(std::string name);
  ReplicaSpec& FaultTimes(Duration visible_mean, Duration latent_mean);
  ReplicaSpec& Weibull(double shape);
  ReplicaSpec& InitialAge(Duration age);
  ReplicaSpec& RepairTimes(Duration visible_repair, Duration latent_repair);
  ReplicaSpec& DeterministicRepair();
  ReplicaSpec& ScrubWith(ScrubPolicy policy);
  ReplicaSpec& ScrubEvery(Duration interval);  // shorthand: periodic policy
  ReplicaSpec& ScrubPhase(Duration phase);

  // Error message if the spec is inconsistent on its own (scenario-level
  // constraints — convention, correlation — are checked by
  // Scenario::Validate).
  std::optional<std::string> Validate() const;

  // Field-wise identity, media label included.
  friend bool operator==(const ReplicaSpec& a, const ReplicaSpec& b);
};

// A complete, self-describing system description: per-replica specs plus
// shared structure. Plain aggregate — build directly, via ScenarioBuilder,
// via Scenario::FromLegacy, or via Scenario::FromJson.
struct Scenario {
  std::vector<ReplicaSpec> replicas;

  // Minimum number of intact replicas/fragments required to reconstruct the
  // data. 1 models whole-data replication (the paper's setting); m > 1
  // models an (n, m) erasure code — n fragments of which any m suffice
  // (OceanStore-style cryptographic sharing, §7). Data loss occurs the
  // moment fewer than `required_intact` fragments remain intact.
  int required_intact = 1;

  // Hazard-multiplier correlation factor in (0, 1] (§5.3): once any replica
  // is faulty, every surviving fault clock's mean shrinks to alpha times its
  // independent value. Shared by the whole fleet — it models the *coupling*,
  // not a per-replica property.
  double alpha = 1.0;

  // kPhysical: each healthy replica runs its own fault clock and repairs
  // proceed in parallel. kPaper: system-level fault clocks at the
  // single-unit rates and serial repair, the convention of equations 7-12
  // (homogeneous fleets only).
  RateConvention convention = RateConvention::kPhysical;

  // Periodic scrub phases: staggered spreads replica audit times evenly
  // across each replica's period (what operators do); aligned audits all
  // replicas at once (worst case for simultaneous latent faults).
  bool scrub_staggered = true;

  // Record kScrubPass trace events (timeline rendering only; expensive for
  // long runs). Requires every replica to scrub periodically.
  bool record_scrub_passes = false;

  // A visible fault striking a replica that already carries an undetected
  // latent fault surfaces it (the whole replica is rebuilt). Off by default
  // to match the paper's model.
  bool visible_fault_surfaces_latent = false;

  std::vector<CommonModeSource> common_mode;

  int replica_count() const { return static_cast<int>(replicas.size()); }

  // Centralized validation: per-replica consistency plus every cross-field
  // constraint (convention vs heterogeneity, correlation vs Weibull,
  // common-mode membership, ...). Returns an error message, or nullopt.
  std::optional<std::string> Validate() const;

  // True when every replica spec is identical (media label included) — the
  // regime the legacy flat config could express.
  bool IsHomogeneous() const;

  // Converts a legacy flat config. Homogeneous by construction; running the
  // result is bit-identical to running the config on the pre-Scenario
  // engine. Normalizes fields the legacy engine ignored (initial ages on
  // exponential fleets, Weibull shape on exponential fleets) so equal
  // behavior implies equal canonical identity. Does not validate.
  static Scenario FromLegacy(const StorageSimConfig& config);

  // The inverse direction, for round-tripping old tooling: a flat config
  // whose FromLegacy image is *identical* to this scenario (canonical JSON
  // equality, hence equal CanonicalHash and trial streams). Throws
  // std::invalid_argument naming the obstacle when no such config exists —
  // heterogeneous replicas (per-replica initial ages excepted; the flat
  // config carries those), an explicit scrub phase, or a non-default media
  // label, none of which StorageSimConfig can express. params.mdl, which
  // FromLegacy ignores, is set to the scrub policy's analytic mean
  // detection latency so legacy closed-form call sites stay consistent.
  StorageSimConfig ToLegacy() const;

  // --- serialization & identity (scenario_json.cc) ------------------------

  // Canonical compact JSON: fixed key order, every field emitted,
  // round-trip-exact doubles ("inf"/"-inf"/"nan" as strings). Two scenarios
  // are field-wise identical iff their canonical JSON strings are equal.
  std::string ToJson() const;

  // Strict parser for the ToJson schema (unknown keys, missing keys and
  // type mismatches are errors). Accepts any key order and ignores
  // insignificant whitespace; throws std::invalid_argument with a position
  // on malformed input. FromJson(ToJson(s)) == s exactly (bit-identical
  // doubles), so the round trip preserves CanonicalHash and trial streams.
  static Scenario FromJson(std::string_view json);

  // Maps an already-parsed JSON value with the same strictness as FromJson.
  // For protocols that embed scenarios inside larger canonical documents
  // (the shard spec, src/shard/) and parse the enclosing tree themselves.
  static Scenario FromJsonValue(const json::Value& value);

  // Stable 64-bit FNV-1a over the canonical JSON. The scenario's identity:
  // deterministic across processes and platforms, so sweep shards can
  // derive per-cell seeds from content rather than position (see
  // SweepOptions::SeedMode::kScenarioDerived).
  uint64_t CanonicalHash() const;
};

// Fluent assembly with centralized validation:
//
//   Scenario s = ScenarioBuilder()
//       .Replicas(2, DiskSpec(SeagateBarracuda200Gb(),
//                             ScrubPolicy::PeriodicPerYear(52.0)))
//       .AddReplica(TapeSpec(Lto3TapeCartridge(), /*audits_per_year=*/4.0)
//                       .ScrubEvery(Duration::Hours(720.0)))
//       .Correlation(0.5)
//       .CommonModeAll("machine room", Rate::PerYear(0.05))
//       .Build();
//
// Build() runs Scenario::Validate and throws std::invalid_argument on any
// inconsistency, so a built Scenario is always runnable.
class ScenarioBuilder {
 public:
  ScenarioBuilder() = default;

  // Appends `count` copies of `spec`.
  ScenarioBuilder& Replicas(int count, ReplicaSpec spec);
  // Appends one replica.
  ScenarioBuilder& AddReplica(ReplicaSpec spec);

  ScenarioBuilder& RequiredIntact(int required_intact);
  ScenarioBuilder& Correlation(double alpha);
  ScenarioBuilder& Convention(RateConvention convention);
  ScenarioBuilder& StaggeredScrubs();
  ScenarioBuilder& AlignedScrubs();
  ScenarioBuilder& RecordScrubPasses();
  ScenarioBuilder& VisibleFaultSurfacesLatent();

  // Adds a common-mode source; members index replicas added so far or later
  // (validated at Build).
  ScenarioBuilder& CommonMode(CommonModeSource source);
  // Shorthand: a source striking every replica of the finished scenario.
  ScenarioBuilder& CommonModeAll(std::string name, Rate event_rate,
                                 double hit_probability = 1.0,
                                 double visible_fraction = 1.0);

  // Validates and returns the scenario; throws std::invalid_argument with
  // the Scenario::Validate message on any inconsistency.
  Scenario Build() const;

  // The scenario assembled so far, unvalidated (for specs that intend to
  // mutate further, e.g. sweep bases).
  const Scenario& Peek() const { return scenario_; }

 private:
  Scenario scenario_;
  std::vector<size_t> all_replica_sources_;  // CommonModeAll fixups at Build
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_SCENARIO_SCENARIO_H_
