#include "src/scenario/scenario_ctmc.h"

#include <stdexcept>

namespace longstore {
namespace {

std::string FieldDiff(int index, const char* field) {
  return "the CTMC state space has one parameter set for the whole fleet, but "
         "replica " +
         std::to_string(index) + " differs from replica 0 in " + field +
         "; score heterogeneous fleets with the simulator (SweepRunner / "
         "TrialRunner)";
}

}  // namespace

std::optional<std::string> CtmcIncompatibility(const Scenario& scenario) {
  if (auto error = scenario.Validate()) {
    return "invalid scenario: " + *error;
  }
  const ReplicaSpec& first = scenario.replicas[0];
  for (int i = 1; i < scenario.replica_count(); ++i) {
    const ReplicaSpec& spec = scenario.replicas[static_cast<size_t>(i)];
    if (spec.fault_distribution != first.fault_distribution) {
      return FieldDiff(i, "fault_distribution");
    }
    if (spec.mv != first.mv) {
      return FieldDiff(i, "mv");
    }
    if (spec.ml != first.ml) {
      return FieldDiff(i, "ml");
    }
    if (spec.weibull_shape != first.weibull_shape) {
      return FieldDiff(i, "weibull_shape");
    }
    if (spec.initial_age_hours != first.initial_age_hours) {
      return FieldDiff(i, "initial_age_hours");
    }
    if (spec.repair_distribution != first.repair_distribution) {
      return FieldDiff(i, "repair_distribution");
    }
    if (spec.mrv != first.mrv) {
      return FieldDiff(i, "mrv");
    }
    if (spec.mrl != first.mrl) {
      return FieldDiff(i, "mrl");
    }
    if (spec.scrub.kind != first.scrub.kind ||
        spec.scrub.interval != first.scrub.interval) {
      return FieldDiff(i, "scrub policy");
    }
  }
  if (first.fault_distribution == FaultDistribution::kWeibull) {
    return "Weibull fault clocks are age-dependent and the CTMC state space "
           "has no age dimension; use exponential faults or the simulator";
  }
  if (first.initial_age_hours > 0.0) {
    return "initial ages are age-dependent state the CTMC cannot carry; use "
           "the simulator";
  }
  if (first.repair_distribution == RepairDistribution::kDeterministic) {
    return "deterministic repair is not exponential; the CTMC repair "
           "transition is memoryless — use RepairDistribution::kExponential "
           "or the simulator";
  }
  if (first.scrub.kind == ScrubPolicy::Kind::kPeriodic) {
    return "periodic scrubbing is a deterministic detection process; the "
           "CTMC detection transition is exponential — use "
           "ScrubPolicy::Exponential for an exact match, or accept the "
           "MDL = interval/2 approximation by building the chain from "
           "ScenarioFaultParams yourself";
  }
  if (!scenario.common_mode.empty()) {
    return "common-mode sources (" + scenario.common_mode[0].name +
           ", ...) strike several replicas per event; the CTMC tracks only "
           "per-replica fault counts — use the simulator";
  }
  if (scenario.visible_fault_surfaces_latent) {
    return "visible_fault_surfaces_latent lets one replica carry two faults; "
           "the CTMC models at most one outstanding fault per replica";
  }
  return std::nullopt;
}

FaultParams ScenarioFaultParams(const Scenario& scenario, int index) {
  if (index < 0 || index >= scenario.replica_count()) {
    throw std::out_of_range("ScenarioFaultParams: replica index out of range");
  }
  const ReplicaSpec& spec = scenario.replicas[static_cast<size_t>(index)];
  FaultParams params;
  params.mv = spec.mv;
  params.ml = spec.ml;
  params.mrv = spec.mrv;
  params.mrl = spec.mrl;
  params.mdl = spec.scrub.MeanDetectionLatency();
  params.alpha = scenario.alpha;
  return params;
}

namespace {

ReplicatedChainBuilder ChainFor(const Scenario& scenario) {
  if (auto reason = CtmcIncompatibility(scenario)) {
    throw std::invalid_argument("Scenario CTMC: " + *reason);
  }
  return ReplicatedChainBuilder(ScenarioFaultParams(scenario),
                                scenario.replica_count(), scenario.convention,
                                scenario.required_intact);
}

}  // namespace

std::optional<Duration> ScenarioCtmcMttdl(const Scenario& scenario) {
  return ChainFor(scenario).Mttdl();
}

std::optional<double> ScenarioCtmcLossProbability(const Scenario& scenario,
                                                  Duration mission) {
  return ChainFor(scenario).LossProbability(mission);
}

}  // namespace longstore
