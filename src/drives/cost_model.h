// Cost model for replicated archival storage (§4.3, §6.1, §6.2).
//
// The paper argues qualitatively that (a) consumer drives beat enterprise
// drives per preserved byte, and (b) on-line replicas beat off-line replicas
// once audit labour is priced in. This module prices both claims so the
// benches and the planner can search cost/reliability trade-offs.

#ifndef LONGSTORE_SRC_DRIVES_COST_MODEL_H_
#define LONGSTORE_SRC_DRIVES_COST_MODEL_H_

#include "src/drives/drive_specs.h"
#include "src/util/units.h"

namespace longstore {

struct CostAssumptions {
  double electricity_usd_per_kwh = 0.10;
  double disk_power_watts = 12.0;
  // Administration per spinning drive per year (monitoring, replacement
  // labour, rack share). Tape libraries shift this cost into per-audit
  // handling instead.
  double admin_usd_per_drive_year = 20.0;
  double space_usd_per_drive_year = 5.0;
  // Rolling procurement: hardware replaced every service life (§6.5).
  Duration replacement_cycle = Duration::Years(5.0);
  // Audit costs. On-line audits are background disk reads: marginal cost is
  // a sliver of power and bandwidth. Off-line audits pay retrieval from
  // storage, mounting, reading, and return (§6.2: "this can be considerable,
  // especially if the off-line copy is in secure off-site storage").
  double online_audit_usd_per_drive = 0.25;
  double offline_audit_usd_per_cartridge = 25.0;
  // Off-site vault rental per cartridge-year.
  double offline_storage_usd_per_cartridge_year = 6.0;

  static CostAssumptions Defaults() { return CostAssumptions{}; }
};

struct ReplicaCostBreakdown {
  double capex_per_year = 0.0;
  double power_per_year = 0.0;
  double admin_per_year = 0.0;
  double space_per_year = 0.0;
  double audit_per_year = 0.0;

  double total_per_year() const {
    return capex_per_year + power_per_year + admin_per_year + space_per_year +
           audit_per_year;
  }
};

// Annual cost of keeping one replica of `archive_gb` on the given media with
// `audits_per_year` full audits. Off-line media (tape) pay no power and no
// per-drive admin, but pay vault storage and per-audit handling.
ReplicaCostBreakdown AnnualReplicaCost(const DriveSpec& drive, double archive_gb,
                                       double audits_per_year,
                                       const CostAssumptions& assumptions);

// Total annual cost of an r-way replicated archive.
double AnnualSystemCost(const DriveSpec& drive, double archive_gb, int replicas,
                        double audits_per_year, const CostAssumptions& assumptions);

// Units (drives or cartridges) needed to hold the archive.
int UnitsForArchive(const DriveSpec& drive, double archive_gb);

}  // namespace longstore

#endif  // LONGSTORE_SRC_DRIVES_COST_MODEL_H_
