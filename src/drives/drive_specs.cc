#include "src/drives/drive_specs.h"

#include <cmath>
#include <stdexcept>

namespace longstore {

std::string_view MediaClassName(MediaClass klass) {
  switch (klass) {
    case MediaClass::kConsumerDisk:
      return "consumer disk";
    case MediaClass::kEnterpriseDisk:
      return "enterprise disk";
    case MediaClass::kTapeCartridge:
      return "tape cartridge";
    case MediaClass::kEtchedMedium:
      return "etched medium";
  }
  return "?";
}

bool IsOfflineMedia(MediaClass klass) {
  return klass == MediaClass::kTapeCartridge ||
         klass == MediaClass::kEtchedMedium;
}

Duration DriveSpec::Mttf() const {
  if (!(five_year_fault_probability > 0.0)) {
    return Duration::Infinite();
  }
  if (five_year_fault_probability >= 1.0) {
    return Duration::Zero();
  }
  return Duration::Hours(-Duration::Years(5.0).hours() /
                         std::log1p(-five_year_fault_probability));
}

Duration DriveSpec::RebuildTime() const {
  if (!(bandwidth_mb_per_s > 0.0)) {
    throw std::logic_error("DriveSpec::RebuildTime: zero bandwidth");
  }
  return Duration::Seconds(capacity_gb * 1000.0 / bandwidth_mb_per_s);
}

DriveSpec SeagateBarracuda200Gb() {
  DriveSpec d;
  d.model = "Seagate Barracuda ST3200822A";
  d.media = MediaClass::kConsumerDisk;
  d.capacity_gb = 200.0;
  d.bandwidth_mb_per_s = 65.0;
  d.five_year_fault_probability = 0.07;
  d.uber = 1e-14;
  d.price_usd = 0.57 * 200.0;  // $0.57/GB (TigerDirect, June 2005)
  d.catalog_year = 2005;
  return d;
}

DriveSpec SeagateCheetah146Gb() {
  DriveSpec d;
  d.model = "Seagate Cheetah 15K.4";
  d.media = MediaClass::kEnterpriseDisk;
  d.capacity_gb = 146.0;
  d.bandwidth_mb_per_s = 300.0;  // the figure §5.4 uses
  d.five_year_fault_probability = 0.03;
  d.uber = 1e-15;
  d.price_usd = 8.20 * 146.0;  // $8.20/GB
  d.catalog_year = 2005;
  return d;
}

DriveSpec Lto3TapeCartridge() {
  DriveSpec d;
  d.model = "LTO-3 cartridge";
  d.media = MediaClass::kTapeCartridge;
  d.capacity_gb = 400.0;
  d.bandwidth_mb_per_s = 80.0;
  // Shelf media sold as decades-durable often degrades within a few years
  // ([20], [31]); 10% over five years is a mid-range reading of that
  // evidence for professionally stored tape.
  d.five_year_fault_probability = 0.10;
  d.uber = 1e-17;  // on-tape ECC gives very low per-bit read error rates
  d.price_usd = 80.0;
  d.catalog_year = 2005;
  return d;
}

DriveSpec GigayearEtchedDisc() {
  DriveSpec d;
  d.model = "SiN-W gigayear disc";
  d.media = MediaClass::kEtchedMedium;
  d.capacity_gb = 100.0;
  // Optical readout of etched QR patterns: bench-instrument rates, not a
  // drive interface.
  d.bandwidth_mb_per_s = 10.0;
  // Accelerated aging puts media wear beyond 1e6 years; what remains over a
  // service interval is encapsulation/handling defects. 0.01% over five
  // years keeps the MTTF finite (the loss-probability math stays nonzero via
  // expm1) while sitting orders of magnitude below every 2005 part.
  d.five_year_fault_probability = 1e-4;
  d.uber = 1e-19;  // per-bit readout errors bounded by the etched geometry
  d.price_usd = 2000.0;  // $20/GB wafer-scale fabrication
  d.catalog_year = 2013;
  return d;
}

const std::vector<DriveSpec>& DriveCatalog() {
  static const std::vector<DriveSpec> catalog = {
      SeagateBarracuda200Gb(),
      SeagateCheetah146Gb(),
      Lto3TapeCartridge(),
      GigayearEtchedDisc(),
  };
  return catalog;
}

double ExpectedIrrecoverableBitErrors(const DriveSpec& drive, double duty_cycle,
                                      Duration service_life) {
  if (duty_cycle < 0.0 || duty_cycle > 1.0) {
    throw std::invalid_argument("duty_cycle must lie in [0, 1]");
  }
  const double active_seconds = service_life.seconds() * duty_cycle;
  const double bits = active_seconds * drive.bandwidth_mb_per_s * 1e6 * 8.0;
  return bits * drive.uber;
}

double BitErrorsPerFullRead(const DriveSpec& drive) {
  return drive.capacity_gb * 1e9 * 8.0 * drive.uber;
}

}  // namespace longstore
