// Off-line replica modelling for the §6.2 disk-vs-tape comparison.
//
// The paper's argument: off-line copies are expensive to audit (retrieval,
// mounting, human handling), the audit process itself injects correlated
// faults (media lost in transit [46], read-induced degradation [3]), and
// repair from off-line media is slow. This module turns those observations
// into effective FaultParams so the same analytic/CTMC/MC machinery can
// compare on-line and off-line replication.

#ifndef LONGSTORE_SRC_DRIVES_OFFLINE_MEDIA_H_
#define LONGSTORE_SRC_DRIVES_OFFLINE_MEDIA_H_

#include "src/drives/drive_specs.h"
#include "src/model/fault_params.h"
#include "src/model/strategies.h"
#include "src/util/units.h"

namespace longstore {

struct OfflineHandlingModel {
  // Fetch from off-site vault + mount before any read or repair can start.
  Duration retrieval_time = Duration::Hours(24.0);
  Duration mount_time = Duration::Minutes(10.0);
  // Probability that one handling round-trip damages or loses the medium
  // (Time Warner's tapes lost in transit are the paper's example [46]).
  double handling_fault_probability = 2e-3;
  // Probability that one full read pass degrades the medium ([3]).
  double read_degradation_probability = 5e-4;

  static OfflineHandlingModel Defaults() { return OfflineHandlingModel{}; }
};

// Builds effective fault parameters for a replica kept off-line and audited
// `audits_per_year` times:
//  - MRV/MRL grow by retrieval + mount + full-read time (repair must fetch
//    and read the medium);
//  - MV shrinks because each audit's handling and read pass add an extra
//    visible-fault rate of audits_per_year * (handling + degradation) per
//    year on top of the medium's intrinsic rate;
//  - MDL is the usual half audit interval.
FaultParams OfflineReplicaParams(const DriveSpec& medium, double audits_per_year,
                                 const OfflineHandlingModel& handling,
                                 double latent_to_visible_ratio);

// On-line counterpart: MRV/MRL from the drive's rebuild time, MDL from the
// scrub policy, intrinsic MV from the spec's five-year fault probability,
// ML = MV / latent_to_visible_ratio (Schwarz et al.'s 5x is the paper's
// default ratio).
FaultParams OnlineReplicaParams(const DriveSpec& drive, const ScrubPolicy& scrub,
                                double latent_to_visible_ratio);

}  // namespace longstore

#endif  // LONGSTORE_SRC_DRIVES_OFFLINE_MEDIA_H_
