#include "src/drives/offline_media.h"

#include <stdexcept>

namespace longstore {
namespace {

void CheckRatio(double latent_to_visible_ratio) {
  if (!(latent_to_visible_ratio > 0.0)) {
    throw std::invalid_argument("latent_to_visible_ratio must be positive");
  }
}

}  // namespace

FaultParams OfflineReplicaParams(const DriveSpec& medium, double audits_per_year,
                                 const OfflineHandlingModel& handling,
                                 double latent_to_visible_ratio) {
  CheckRatio(latent_to_visible_ratio);
  if (audits_per_year < 0.0) {
    throw std::invalid_argument("audits_per_year must be >= 0");
  }
  FaultParams p;

  // Intrinsic visible-fault rate plus audit-induced handling/read faults.
  const double intrinsic_per_year =
      Rate::InverseOf(medium.Mttf()).per_year();
  const double audit_induced_per_year =
      audits_per_year * (handling.handling_fault_probability +
                         handling.read_degradation_probability);
  const double visible_per_year = intrinsic_per_year + audit_induced_per_year;
  p.mv = visible_per_year > 0.0 ? Duration::Years(1.0 / visible_per_year)
                                : Duration::Infinite();
  p.ml = Duration::Hours(p.mv.hours() / latent_to_visible_ratio);

  // Repair and audit latency both pay retrieval + mount + full read.
  const Duration access_overhead =
      handling.retrieval_time + handling.mount_time + medium.RebuildTime();
  p.mrv = access_overhead;
  p.mrl = access_overhead;
  p.mdl = audits_per_year > 0.0
              ? Duration::Years(1.0 / audits_per_year) / 2.0
              : Duration::Infinite();
  p.alpha = 1.0;
  return p;
}

FaultParams OnlineReplicaParams(const DriveSpec& drive, const ScrubPolicy& scrub,
                                double latent_to_visible_ratio) {
  CheckRatio(latent_to_visible_ratio);
  FaultParams p;
  p.mv = drive.Mttf();
  p.ml = Duration::Hours(p.mv.hours() / latent_to_visible_ratio);
  p.mrv = drive.RebuildTime();
  p.mrl = drive.RebuildTime();
  p.mdl = scrub.MeanDetectionLatency();
  p.alpha = 1.0;
  return p;
}

}  // namespace longstore
