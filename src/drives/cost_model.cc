#include "src/drives/cost_model.h"

#include <cmath>
#include <stdexcept>

namespace longstore {

int UnitsForArchive(const DriveSpec& drive, double archive_gb) {
  if (!(drive.capacity_gb > 0.0)) {
    throw std::invalid_argument("UnitsForArchive: drive capacity must be positive");
  }
  if (!(archive_gb > 0.0)) {
    throw std::invalid_argument("UnitsForArchive: archive size must be positive");
  }
  return static_cast<int>(std::ceil(archive_gb / drive.capacity_gb));
}

ReplicaCostBreakdown AnnualReplicaCost(const DriveSpec& drive, double archive_gb,
                                       double audits_per_year,
                                       const CostAssumptions& assumptions) {
  if (audits_per_year < 0.0) {
    throw std::invalid_argument("AnnualReplicaCost: audits_per_year must be >= 0");
  }
  const int units = UnitsForArchive(drive, archive_gb);
  const double unit_count = static_cast<double>(units);

  ReplicaCostBreakdown cost;
  cost.capex_per_year =
      unit_count * drive.price_usd / assumptions.replacement_cycle.years();

  if (IsOfflineMedia(drive.media)) {
    cost.power_per_year = 0.0;
    cost.admin_per_year = 0.0;
    cost.space_per_year = unit_count * assumptions.offline_storage_usd_per_cartridge_year;
    cost.audit_per_year =
        unit_count * audits_per_year * assumptions.offline_audit_usd_per_cartridge;
  } else {
    cost.power_per_year = unit_count * assumptions.disk_power_watts *
                          kHoursPerYear / 1000.0 * assumptions.electricity_usd_per_kwh;
    cost.admin_per_year = unit_count * assumptions.admin_usd_per_drive_year;
    cost.space_per_year = unit_count * assumptions.space_usd_per_drive_year;
    cost.audit_per_year =
        unit_count * audits_per_year * assumptions.online_audit_usd_per_drive;
  }
  return cost;
}

double AnnualSystemCost(const DriveSpec& drive, double archive_gb, int replicas,
                        double audits_per_year, const CostAssumptions& assumptions) {
  if (replicas < 1) {
    throw std::invalid_argument("AnnualSystemCost: replicas must be >= 1");
  }
  return static_cast<double>(replicas) *
         AnnualReplicaCost(drive, archive_gb, audits_per_year, assumptions)
             .total_per_year();
}

}  // namespace longstore
