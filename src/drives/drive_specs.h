// Drive specification database seeded with the figures the paper quotes in
// §5.4 and §6.1 (Seagate spec sheets and June 2005 TigerDirect prices).
//
// The analysis consumes only (capacity, bandwidth, in-service fault
// probability, irrecoverable-bit-error rate, price), all of which the paper
// states explicitly, so this catalog substitutes fully for the 2005 spec
// sheets (see DESIGN.md substitution table).

#ifndef LONGSTORE_SRC_DRIVES_DRIVE_SPECS_H_
#define LONGSTORE_SRC_DRIVES_DRIVE_SPECS_H_

#include <string>
#include <vector>

#include "src/util/units.h"

namespace longstore {

enum class MediaClass {
  kConsumerDisk,
  kEnterpriseDisk,
  kTapeCartridge,
  // Write-once etched media rated for geological retention (the
  // silicon-nitride/tungsten "gigayear" disc, arXiv:1310.2961): vaulted like
  // tape, read via a lab instrument, media faults dominated by handling.
  kEtchedMedium,
};

std::string_view MediaClassName(MediaClass klass);

// Off-line (vaulted) media: no power or per-drive admin while shelved; pay
// per-cartridge vault storage and per-audit retrieval/handling instead. The
// cost model and the planner's parameter derivation branch on this.
bool IsOfflineMedia(MediaClass klass);

struct DriveSpec {
  std::string model;
  MediaClass media = MediaClass::kConsumerDisk;
  double capacity_gb = 0.0;
  // Effective sustained transfer rate used for rebuild-time and bit-error
  // arithmetic. For the Cheetah the paper itself uses 300 MB/s (§5.4).
  double bandwidth_mb_per_s = 0.0;
  // Probability of an in-service (visible) fault over a 5-year service life
  // (§6.1: 7% Barracuda, 3% Cheetah).
  double five_year_fault_probability = 0.0;
  // Irrecoverable bit error rate per bit transferred (§6.1: 1e-14 / 1e-15).
  double uber = 0.0;
  double price_usd = 0.0;
  int catalog_year = 2005;

  double price_per_gb() const { return price_usd / capacity_gb; }

  // MTTF under the memoryless assumption: p5 = 1 - exp(-5y / MTTF), so
  // MTTF = -5y / ln(1 - p5). The Cheetah's 3% gives 1.44e6 h, matching the
  // paper's quoted MV = 1.4e6 h.
  Duration Mttf() const;

  // Full-capacity rebuild time at the spec bandwidth (the paper's MRV
  // derivation).
  Duration RebuildTime() const;
};

// §6.1 catalog entries.
//
// Barracuda ST3200822A: 200 GB consumer ATA drive, $0.57/GB. The 65 MB/s
// effective bandwidth is the spec-sheet sustained rate; with the paper's
// 99%-idle 5-year scenario it yields the "about 8" irrecoverable bit errors.
DriveSpec SeagateBarracuda200Gb();

// Cheetah 15K.4: 146 GB enterprise SCSI drive, $8.20/GB, quoted at 300 MB/s
// in §5.4 (the interface rate; the paper's own MRV = 20 min corresponds to
// ~122 MB/s effective rebuild bandwidth).
DriveSpec SeagateCheetah146Gb();

// A contemporary (2005) LTO-3 tape cartridge for the §6.2 off-line
// comparison: 400 GB native, 80 MB/s, low media cost. The 5-year fault
// probability reflects the CD-ROM/tape shelf-degradation evidence the paper
// cites (media rated for decades often failing within 2-5 years).
DriveSpec Lto3TapeCartridge();

// A QR-coded silicon-nitride/tungsten sample disc per de Vries et al.
// (arXiv:1310.2961): accelerated aging projects media lifetimes beyond a
// million years, so the five-year fault probability models handling and
// encapsulation defects rather than media wear. Write-once, low capacity,
// high per-GB capex, read on a lab bench — an endpoint for the frontier's
// media-mix search, not a 2005 catalog part.
DriveSpec GigayearEtchedDisc();

const std::vector<DriveSpec>& DriveCatalog();

// Expected irrecoverable bit errors over a service life in which the drive
// is active `duty_cycle` of the time, transferring at its spec bandwidth
// (§6.1: "Even if the drives spend their 5 year life 99% idle ...").
double ExpectedIrrecoverableBitErrors(const DriveSpec& drive, double duty_cycle,
                                      Duration service_life);

// Expected irrecoverable bit errors incurred by reading the full capacity
// once (the per-scrub-pass error exposure).
double BitErrorsPerFullRead(const DriveSpec& drive);

}  // namespace longstore

#endif  // LONGSTORE_SRC_DRIVES_DRIVE_SPECS_H_
