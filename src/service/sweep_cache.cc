#include "src/service/sweep_cache.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/obs/metrics.h"

namespace longstore {
namespace {

// Telemetry mirrors of SweepCacheStats (registered once; see
// src/obs/README.md for the catalog).
obs::Counter& ExactHitMetric() {
  static obs::Counter& c =
      obs::Registry::Global().counter("service.cache.exact_hits");
  return c;
}
obs::Counter& ResumeHitMetric() {
  static obs::Counter& c =
      obs::Registry::Global().counter("service.cache.resume_hits");
  return c;
}
obs::Counter& MissMetric() {
  static obs::Counter& c =
      obs::Registry::Global().counter("service.cache.misses");
  return c;
}
obs::Counter& InsertionMetric() {
  static obs::Counter& c =
      obs::Registry::Global().counter("service.cache.insertions");
  return c;
}
obs::Counter& EvictionMetric() {
  static obs::Counter& c =
      obs::Registry::Global().counter("service.cache.evictions");
  return c;
}

}  // namespace

SweepCache::SweepCache(size_t capacity) : capacity_(capacity) {
  if (capacity_ < 1) {
    throw std::invalid_argument("SweepCache: capacity must be >= 1");
  }
}

void SweepCache::Touch(Entry& entry) {
  recency_.splice(recency_.begin(), recency_, entry.recency);
}

SweepCacheLookup SweepCache::Lookup(uint64_t sweep_id, uint64_t resume_key,
                                    double requested_precision) {
  SweepCacheLookup outcome;
  if (const CachedSweep* exact = FindExact(sweep_id)) {
    ++stats_.exact_hits;
    ExactHitMetric().Add(1);
    outcome.kind = SweepCacheLookup::Kind::kExactHit;
    outcome.entry = exact;
    return outcome;
  }
  if (resume_key != 0) {
    if (const CachedSweep* near = FindResumable(resume_key,
                                                requested_precision)) {
      ++stats_.resume_hits;
      ResumeHitMetric().Add(1);
      outcome.kind = SweepCacheLookup::Kind::kResumeHit;
      outcome.entry = near;
      return outcome;
    }
  }
  ++stats_.misses;
  MissMetric().Add(1);
  return outcome;
}

const CachedSweep* SweepCache::FindExact(uint64_t sweep_id) {
  const auto it = entries_.find(sweep_id);
  if (it == entries_.end()) {
    return nullptr;
  }
  Touch(it->second);
  return &it->second.sweep;
}

const CachedSweep* SweepCache::FindResumable(uint64_t resume_key,
                                             double requested_precision) {
  const auto keyed = resume_index_.find(resume_key);
  if (keyed == resume_index_.end()) {
    return nullptr;
  }
  Entry* best = nullptr;
  for (const uint64_t sweep_id : keyed->second) {
    Entry& entry = entries_.at(sweep_id);
    // Only a strictly looser stored run resumes byte-identically: the cold
    // run at `requested_precision` passes through every round the stored
    // run completed, then keeps going. (A tighter stored run overshoots the
    // round where the cold looser run would have stopped.)
    if (entry.sweep.relative_precision <= requested_precision) {
      continue;
    }
    if (best == nullptr || entry.sweep.total_trials > best->sweep.total_trials) {
      best = &entry;
    }
  }
  if (best == nullptr) {
    return nullptr;
  }
  Touch(*best);
  return &best->sweep;
}

void SweepCache::Erase(uint64_t sweep_id) {
  const auto it = entries_.find(sweep_id);
  if (it == entries_.end()) {
    return;
  }
  const uint64_t resume_key = it->second.sweep.resume_key;
  if (resume_key != 0) {
    auto keyed = resume_index_.find(resume_key);
    if (keyed != resume_index_.end()) {
      auto& ids = keyed->second;
      ids.erase(std::remove(ids.begin(), ids.end(), sweep_id), ids.end());
      if (ids.empty()) {
        resume_index_.erase(keyed);
      }
    }
  }
  recency_.erase(it->second.recency);
  entries_.erase(it);
}

void SweepCache::Insert(CachedSweep entry) {
  const uint64_t sweep_id = entry.sweep_id;
  Erase(sweep_id);  // same request recomputed (e.g. after eviction races)
  while (entries_.size() >= capacity_) {
    ++stats_.evictions;
    EvictionMetric().Add(1);
    Erase(recency_.back());
  }
  recency_.push_front(sweep_id);
  Entry stored;
  stored.sweep = std::move(entry);
  stored.recency = recency_.begin();
  if (stored.sweep.resume_key != 0) {
    resume_index_[stored.sweep.resume_key].push_back(sweep_id);
  }
  entries_.emplace(sweep_id, std::move(stored));
  ++stats_.insertions;
  InsertionMetric().Add(1);
}

}  // namespace longstore
