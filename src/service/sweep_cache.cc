#include "src/service/sweep_cache.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace longstore {

SweepCache::SweepCache(size_t capacity) : capacity_(capacity) {
  if (capacity_ < 1) {
    throw std::invalid_argument("SweepCache: capacity must be >= 1");
  }
}

void SweepCache::Touch(Entry& entry) {
  recency_.splice(recency_.begin(), recency_, entry.recency);
}

const CachedSweep* SweepCache::FindExact(uint64_t sweep_id) {
  const auto it = entries_.find(sweep_id);
  if (it == entries_.end()) {
    return nullptr;
  }
  Touch(it->second);
  ++stats_.exact_hits;
  return &it->second.sweep;
}

const CachedSweep* SweepCache::FindResumable(uint64_t resume_key,
                                             double requested_precision) {
  const auto keyed = resume_index_.find(resume_key);
  if (keyed == resume_index_.end()) {
    return nullptr;
  }
  Entry* best = nullptr;
  for (const uint64_t sweep_id : keyed->second) {
    Entry& entry = entries_.at(sweep_id);
    // Only a strictly looser stored run resumes byte-identically: the cold
    // run at `requested_precision` passes through every round the stored
    // run completed, then keeps going. (A tighter stored run overshoots the
    // round where the cold looser run would have stopped.)
    if (entry.sweep.relative_precision <= requested_precision) {
      continue;
    }
    if (best == nullptr || entry.sweep.total_trials > best->sweep.total_trials) {
      best = &entry;
    }
  }
  if (best == nullptr) {
    return nullptr;
  }
  Touch(*best);
  ++stats_.resume_hits;
  return &best->sweep;
}

void SweepCache::Erase(uint64_t sweep_id) {
  const auto it = entries_.find(sweep_id);
  if (it == entries_.end()) {
    return;
  }
  const uint64_t resume_key = it->second.sweep.resume_key;
  if (resume_key != 0) {
    auto keyed = resume_index_.find(resume_key);
    if (keyed != resume_index_.end()) {
      auto& ids = keyed->second;
      ids.erase(std::remove(ids.begin(), ids.end(), sweep_id), ids.end());
      if (ids.empty()) {
        resume_index_.erase(keyed);
      }
    }
  }
  recency_.erase(it->second.recency);
  entries_.erase(it);
}

void SweepCache::Insert(CachedSweep entry) {
  const uint64_t sweep_id = entry.sweep_id;
  Erase(sweep_id);  // same request recomputed (e.g. after eviction races)
  while (entries_.size() >= capacity_) {
    ++stats_.evictions;
    Erase(recency_.back());
  }
  recency_.push_front(sweep_id);
  Entry stored;
  stored.sweep = std::move(entry);
  stored.recency = recency_.begin();
  if (stored.sweep.resume_key != 0) {
    resume_index_[stored.sweep.resume_key].push_back(sweep_id);
  }
  entries_.emplace(sweep_id, std::move(stored));
  ++stats_.insertions;
}

}  // namespace longstore
