// The resident sweep service: the request broker behind tools/sweep_serviced.
//
// A SweepService owns a SweepCache and an execution backend — the
// process-wide warm WorkerPool (threads stay up between requests, so a
// query pays zero pool spin-up) or a supervised sweep_worker fleet
// (src/fleet/) — and answers ServiceRequests:
//
//   * exact cache hit: the stored finalized bytes, zero simulation;
//   * near hit (adaptive request differing only in relative_precision from
//     a stored *looser* run): ResumeSweepCells continues from the stored
//     Welford accumulators on the warm pool — the resumed answer is
//     byte-identical to a cold run at the requested precision, while only
//     the trials beyond the stored run are simulated. Resume always
//     executes in-process even under the fleet backend: fleet workers
//     cannot be seeded with accumulator state across the process boundary;
//   * miss: a cold run on the configured backend, then cached.
//
// Determinism contract: every answer — computed, cached, or resumed — is
// byte-identical to what a cold single-process SweepRunner::Run of the same
// document would finalize. The cache can therefore never change a figure,
// only the wall clock.
//
// HandleRequestBytes never throws: malformed envelopes, schema violations,
// invalid sweeps and fleet failures all become structured error responses,
// with `retryable` distinguishing transport corruption (send it again) from
// requests that can never succeed. The service is single-threaded by design
// (one request at a time, like the fleet supervisor's loop) — every cache
// transition is race-free by construction.

#ifndef LONGSTORE_SRC_SERVICE_SWEEP_SERVICE_H_
#define LONGSTORE_SRC_SERVICE_SWEEP_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/fleet/fleet.h"
#include "src/service/service_protocol.h"
#include "src/service/sweep_cache.h"
#include "src/sweep/sweep.h"

namespace longstore {

struct ServiceOptions {
  enum class Backend {
    kPool,   // RunSweepCells on the warm in-process pool
    kFleet,  // FleetSupervisor over sweep_worker subprocesses
  };

  Backend backend = Backend::kPool;
  // In-process pool for kPool runs and every resume; nullptr =
  // WorkerPool::Shared(). Must outlive the service.
  WorkerPool* pool = nullptr;
  // kFleet only. partial_ok is ignored: the service caches only complete
  // results, so an incomplete fleet run is answered as a retryable error.
  FleetOptions fleet;
  size_t cache_capacity = 64;
  // Structured trace journal for request lifecycles (one event per request:
  // kind, source, ok, latency). Telemetry only; nullptr or an unopened
  // journal records nothing. Not owned; must outlive the service.
  obs::TraceJournal* journal = nullptr;
};

class SweepService {
 public:
  explicit SweepService(ServiceOptions options);

  // The full wire round trip: parse one request document, execute it,
  // serialize the response. Never throws; `source` names the transport in
  // error messages (e.g. "socket peer").
  std::string HandleRequestBytes(std::string_view request_bytes,
                                 const std::string& source = "");

  // In-process entry point (tests, embedded use). Never throws.
  ServiceResponse Handle(const ServiceRequest& request);

  size_t cache_size() const { return cache_.size(); }
  const SweepCacheStats& cache_stats() const { return cache_.stats(); }

 private:
  // Handle minus the telemetry wrapper (latency histogram + journal event).
  ServiceResponse Dispatch(const ServiceRequest& request);
  ServiceResponse HandleSweep(const ServiceRequest& request);
  ServiceResponse HandleStats() const;
  ServiceResponse HandleMetrics() const;

  ServiceOptions options_;
  WorkerPool& pool_;
  SweepCache cache_;
  int64_t requests_ = 0;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_SERVICE_SWEEP_SERVICE_H_
