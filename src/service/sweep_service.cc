#include "src/service/sweep_service.h"

#include <exception>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/shard/shard.h"
#include "src/util/json.h"

namespace longstore {
namespace {

// Stable kind label for telemetry keys and trace events (the wire name).
const char* RequestKindName(ServiceRequest::Kind kind) {
  switch (kind) {
    case ServiceRequest::Kind::kPing:
      return "ping";
    case ServiceRequest::Kind::kStats:
      return "stats";
    case ServiceRequest::Kind::kSweep:
      return "sweep";
    case ServiceRequest::Kind::kMetrics:
      return "metrics";
  }
  return "unknown";
}

ServiceResponse ErrorResponse(bool retryable, std::string message) {
  ServiceResponse response;
  response.ok = false;
  response.retryable = retryable;
  response.message = std::move(message);
  return response;
}

int64_t TotalTrials(const std::vector<SweepCellExecution>& executions) {
  int64_t total = 0;
  for (const SweepCellExecution& cell : executions) {
    total += cell.trials;
  }
  return total;
}

}  // namespace

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.pool != nullptr ? *options_.pool : WorkerPool::Shared()),
      cache_(options_.cache_capacity) {
  // An incomplete answer must never be cached or served as a figure; the
  // service downgrades fleet partial runs to retryable errors instead.
  options_.fleet.partial_ok = false;
}

std::string SweepService::HandleRequestBytes(std::string_view request_bytes,
                                             const std::string& source) {
  ServiceRequest request;
  std::string response_bytes;
  try {
    request = ServiceRequest::FromJson(request_bytes, source);
    response_bytes = Handle(request).ToJson();
  } catch (const json::IntegrityError& e) {
    response_bytes = ErrorResponse(/*retryable=*/true, e.what()).ToJson();
  } catch (const std::exception& e) {
    response_bytes = ErrorResponse(/*retryable=*/false, e.what()).ToJson();
  }
  if (obs::Enabled()) {
    static obs::Histogram& h_in =
        obs::Registry::Global().histogram("service.frame_bytes_in");
    static obs::Histogram& h_out =
        obs::Registry::Global().histogram("service.frame_bytes_out");
    h_in.Record(static_cast<int64_t>(request_bytes.size()));
    h_out.Record(static_cast<int64_t>(response_bytes.size()));
  }
  return response_bytes;
}

ServiceResponse SweepService::Handle(const ServiceRequest& request) {
  const bool telemetry = obs::Enabled();
  const int64_t t0 = telemetry ? obs::MonotonicNanos() : 0;
  ServiceResponse response = Dispatch(request);
  if (telemetry) {
    const char* kind = RequestKindName(request.kind);
    const int64_t latency_ns = obs::MonotonicNanos() - t0;
    obs::Registry::Global()
        .histogram(std::string("service.latency_ns.") + kind)
        .Record(latency_ns);
    if (options_.journal != nullptr) {
      options_.journal->Emit(obs::TraceEvent("service_request")
                                 .Str("kind", kind)
                                 .Str("source", response.source)
                                 .Int("ok", response.ok ? 1 : 0)
                                 .Hex("sweep_id", response.sweep_id)
                                 .Int("new_trials", response.new_trials)
                                 .Int("latency_ns", latency_ns));
    }
  }
  return response;
}

ServiceResponse SweepService::Dispatch(const ServiceRequest& request) {
  ++requests_;
  switch (request.kind) {
    case ServiceRequest::Kind::kPing: {
      ServiceResponse response;
      response.ok = true;
      response.source = "pong";
      return response;
    }
    case ServiceRequest::Kind::kStats:
      return HandleStats();
    case ServiceRequest::Kind::kMetrics:
      return HandleMetrics();
    case ServiceRequest::Kind::kSweep:
      try {
        return HandleSweep(request);
      } catch (const json::IntegrityError& e) {
        // The embedded shard document failed its own envelope check: the
        // outer frame arrived intact, but the client serialized from
        // already-corrupted bytes — still worth a resend.
        return ErrorResponse(/*retryable=*/true, e.what());
      } catch (const std::exception& e) {
        return ErrorResponse(/*retryable=*/false, e.what());
      }
  }
  return ErrorResponse(/*retryable=*/false, "unknown request kind");
}

ServiceResponse SweepService::HandleSweep(const ServiceRequest& request) {
  ShardSpec spec = ShardSpec::FromJson(request.sweep_document, "service request");
  if (spec.shard_index != 0 || spec.shard_count != 1) {
    throw std::invalid_argument(
        "service request: the sweep document must be the whole sweep "
        "(shard 0 of 1), got shard " + std::to_string(spec.shard_index) +
        " of " + std::to_string(spec.shard_count));
  }
  if (spec.total_cells != spec.cells.size()) {
    throw std::invalid_argument(
        "service request: total_cells " + std::to_string(spec.total_cells) +
        " does not match the " + std::to_string(spec.cells.size()) +
        " cells present");
  }
  ValidateSweepOptions(spec.options);
  ValidateSweepCells(spec.cells);

  const uint64_t sweep_id =
      ComputeSweepId(spec.axis_names, spec.options, spec.cells);
  if (spec.sweep_id != 0 && spec.sweep_id != sweep_id) {
    throw std::invalid_argument(
        "service request: document sweep_id does not match its own content "
        "(stale or hand-edited document?)");
  }
  // Entries sharing every field but relative_precision share this key.
  // Precision 0 is impossible on a real request (validation requires > 0),
  // so the pin can never collide with a genuine sweep_id input.
  uint64_t resume_key = 0;
  if (spec.options.adaptive) {
    SweepOptions pinned = spec.options;
    pinned.relative_precision = 0.0;
    resume_key = ComputeSweepId(spec.axis_names, pinned, spec.cells);
  }

  ServiceResponse response;
  response.ok = true;
  response.sweep_id = sweep_id;

  // One counted lookup: the cache itself classifies the request as exact
  // hit, near hit, or miss (and keeps the stats books — see SweepCache).
  const SweepCacheLookup lookup =
      cache_.Lookup(sweep_id, resume_key, spec.options.relative_precision);
  if (lookup.kind == SweepCacheLookup::Kind::kExactHit) {
    response.source = "cache";
    response.result_json = lookup.entry->result_json;
    return response;
  }

  CachedSweep entry;
  entry.sweep_id = sweep_id;
  entry.resume_key = resume_key;
  entry.relative_precision = spec.options.relative_precision;

  if (lookup.kind == SweepCacheLookup::Kind::kResumeHit) {
    // Continue from the stored accumulators on the warm pool. Byte-identity
    // with the cold run holds because trial seeds and the round schedule
    // are independent of where the stored run stopped (ResumeSweepCells'
    // contract); the fleet cannot take this path — its workers start from
    // empty accumulators by design.
    const CachedSweep* seed = lookup.entry;
    const int64_t prior_trials = seed->total_trials;
    entry.executions = ResumeSweepCells(pool_, std::move(spec.cells),
                                        spec.options, seed->executions);
    response.source = "resumed";
    response.new_trials = TotalTrials(entry.executions) - prior_trials;
  } else {
    response.source = "computed";
    if (options_.backend == ServiceOptions::Backend::kFleet) {
      FleetReport report = FleetSupervisor(options_.fleet).Run(
          spec.axis_names, spec.options, std::move(spec.cells));
      entry.executions = std::move(report.executions);
    } else {
      entry.executions =
          RunSweepCells(pool_, std::move(spec.cells), spec.options);
    }
    response.new_trials = TotalTrials(entry.executions);
  }

  entry.total_trials = TotalTrials(entry.executions);
  entry.result_json =
      FinalizeSweepCells(entry.executions, spec.axis_names,
                         spec.options.estimand, spec.options.mc.confidence)
          .ToJson();
  response.result_json = entry.result_json;
  cache_.Insert(std::move(entry));
  return response;
}

ServiceResponse SweepService::HandleStats() const {
  const SweepCacheStats& stats = cache_.stats();
  std::string body = "{\"requests\":";
  json::AppendInt64(body, requests_);
  body += ",\"cache_entries\":";
  json::AppendInt64(body, static_cast<int64_t>(cache_.size()));
  body += ",\"exact_hits\":";
  json::AppendInt64(body, stats.exact_hits);
  body += ",\"resume_hits\":";
  json::AppendInt64(body, stats.resume_hits);
  body += ",\"misses\":";
  json::AppendInt64(body, stats.misses);
  body += ",\"insertions\":";
  json::AppendInt64(body, stats.insertions);
  body += ",\"evictions\":";
  json::AppendInt64(body, stats.evictions);
  body += '}';

  ServiceResponse response;
  response.ok = true;
  response.source = "stats";
  response.result_json = std::move(body);
  return response;
}

ServiceResponse SweepService::HandleMetrics() const {
  ServiceResponse response;
  response.ok = true;
  response.source = "metrics";
  // The canonical MetricsSnapshot: process-wide, byte-stable given equal
  // counter values. With telemetry disabled the shape survives with zeros,
  // so clients can always parse it.
  response.result_json = obs::Registry::Global().SnapshotJson();
  return response;
}

}  // namespace longstore
