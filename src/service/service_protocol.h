// Wire protocol of the resident sweep service (tools/sweep_serviced):
// request/response documents plus the byte-stream framing they travel in.
//
// Framing: every message is one frame, "<decimal byte count>\n<payload>",
// over a Unix-domain socket or a stdin/stdout pipe. The length prefix makes
// message boundaries explicit (JSON documents are self-delimiting only to a
// parser, and the reader must know how many bytes to trust *before* parsing
// them); it is deliberately the same shape the shard files use for size
// verification, just streamed.
//
// Documents: canonical JSON wrapped in the shared checksummed envelope
// (src/util/json.h, version key "service_version") — the same end-to-end
// integrity discipline as the shard protocol, so a transport that corrupts
// silently produces a retryable structured error, never a wrong figure. A
// sweep request embeds a complete single-shard document (ShardSpec::ToJson
// bytes, shard_index 0 of 1) as an escaped string: the shard schema already
// carries everything a sweep needs (options, axes, cells as canonical
// scenarios) and reusing its exact bytes means the service's identity
// hashes are computed over the same canonical form the shard fleet proves
// byte-identical. Full schema: src/service/README.md.

#ifndef LONGSTORE_SRC_SERVICE_SERVICE_PROTOCOL_H_
#define LONGSTORE_SRC_SERVICE_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace longstore {

// Bumped whenever the service schema changes shape or meaning; a server or
// client speaking a different version rejects the document outright.
inline constexpr int kServiceProtocolVersion = 1;
inline constexpr char kServiceVersionKey[] = "service_version";

struct ServiceRequest {
  enum class Kind {
    kPing,     // liveness probe; answered from the accept loop, no simulation
    kStats,    // cache/uptime counters as a JSON object in `result`
    kSweep,    // execute (or serve from cache) the embedded sweep document
    kMetrics,  // the canonical MetricsSnapshot (obs::Registry::SnapshotJson)
               // in `result`. Added without a protocol version bump: new
               // request kinds are additive — an old server rejects the
               // *request* with a non-retryable error, never misreads it.
  };

  Kind kind = Kind::kPing;
  // kSweep only: a complete single-shard document (ShardSpec::ToJson bytes
  // with shard_index 0, shard_count 1, all cells). Empty otherwise.
  std::string sweep_document;

  std::string ToJson() const;
  // Verifies the envelope (json::IntegrityError on length/checksum
  // mismatch — retryable), then parses strictly; `source` names the
  // transport in errors.
  static ServiceRequest FromJson(std::string_view json,
                                 const std::string& source = "");
};

struct ServiceResponse {
  bool ok = false;
  // kOk responses: where the answer came from — "computed" (cold run),
  // "cache" (exact hit, no simulation), "resumed" (near hit continued from
  // stored accumulator state), "pong", or "stats".
  std::string source;
  uint64_t sweep_id = 0;    // identity of the executed sweep; 0 for ping
  int64_t new_trials = 0;   // trials simulated to answer *this* request
  std::string result_json;  // SweepResult::ToJson bytes ("" for ping; stats
                            // object for kStats)
  // Error responses: whether retrying the identical request can succeed
  // (transport corruption) or not (schema/validation error), and a precise
  // message.
  bool retryable = false;
  std::string message;

  std::string ToJson() const;
  static ServiceResponse FromJson(std::string_view json,
                                  const std::string& source = "");
};

// --- framing ---------------------------------------------------------------

enum class FrameStatus {
  kOk,
  kEof,        // clean end of stream before any byte of a frame
  kMalformed,  // unparseable length, oversized frame, or truncated payload
};

// Frames larger than this are refused outright — a corrupted length prefix
// must not convince the server to allocate gigabytes.
inline constexpr size_t kMaxFrameBytes = size_t{256} << 20;

// Reads one "<len>\n<payload>" frame from `fd` (blocking, EINTR-safe).
// kMalformed fills `error` with the reason; the stream is unrecoverable
// afterwards (the reader cannot resynchronize on a byte stream).
FrameStatus ReadFrame(int fd, std::string* payload, std::string* error);

// Writes one frame; false on any write error (EPIPE included — the caller
// decides whether a vanished peer matters).
bool WriteFrame(int fd, std::string_view payload);

}  // namespace longstore

#endif  // LONGSTORE_SRC_SERVICE_SERVICE_PROTOCOL_H_
