#include "src/service/service_protocol.h"

#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "src/util/json.h"

namespace longstore {
namespace {

constexpr char kRequestContext[] = "ServiceRequest::FromJson";
constexpr char kResponseContext[] = "ServiceResponse::FromJson";

const char* KindName(ServiceRequest::Kind kind) {
  switch (kind) {
    case ServiceRequest::Kind::kPing:
      return "ping";
    case ServiceRequest::Kind::kStats:
      return "stats";
    case ServiceRequest::Kind::kSweep:
      return "sweep";
    case ServiceRequest::Kind::kMetrics:
      return "metrics";
  }
  throw std::invalid_argument("ServiceRequest: unknown kind");
}

ServiceRequest::Kind ParseKind(const std::string& name,
                               const std::string& context) {
  if (name == "ping") {
    return ServiceRequest::Kind::kPing;
  }
  if (name == "stats") {
    return ServiceRequest::Kind::kStats;
  }
  if (name == "sweep") {
    return ServiceRequest::Kind::kSweep;
  }
  if (name == "metrics") {
    return ServiceRequest::Kind::kMetrics;
  }
  json::Fail(context, "unknown request kind '" + name + "'");
}

// Opens the envelope and checks the protocol version; both request and
// response documents share this prologue.
json::ChecksummedDocument OpenServiceDocument(std::string_view text,
                                              const std::string& context,
                                              const std::string& source) {
  const json::ChecksummedDocument doc =
      json::OpenChecksummedDocument(text, kServiceVersionKey, context, source);
  if (!doc.checksummed) {
    json::Fail(context, "not a checksummed service document" +
                            (source.empty() ? "" : " (" + source + ")"));
  }
  if (doc.version != kServiceProtocolVersion) {
    json::Fail(context, "protocol version " + std::to_string(doc.version) +
                            " is not the supported version " +
                            std::to_string(kServiceProtocolVersion));
  }
  return doc;
}

}  // namespace

std::string ServiceRequest::ToJson() const {
  std::string body = "{\"request\":\"";
  body += KindName(kind);
  body += "\",\"sweep_document\":";
  json::AppendEscaped(body, sweep_document);
  body += '}';
  return json::WrapChecksummedBody(kServiceVersionKey, kServiceProtocolVersion,
                                   body);
}

ServiceRequest ServiceRequest::FromJson(std::string_view text,
                                        const std::string& source) {
  const json::ChecksummedDocument doc =
      OpenServiceDocument(text, kRequestContext, source);
  const json::Value root = json::Parse(doc.body, kRequestContext);
  json::ObjectReader reader(root, "request", kRequestContext);
  ServiceRequest request;
  request.kind = ParseKind(reader.GetString("request"), kRequestContext);
  request.sweep_document = reader.GetString("sweep_document");
  reader.Finish();
  if (request.kind == Kind::kSweep && request.sweep_document.empty()) {
    json::Fail(kRequestContext, "sweep request carries no sweep_document");
  }
  return request;
}

std::string ServiceResponse::ToJson() const {
  std::string body = "{\"status\":\"";
  body += ok ? "ok" : "error";
  body += "\",\"source\":";
  json::AppendEscaped(body, source);
  body += ",\"sweep_id\":";
  json::AppendUint64Hex(body, sweep_id);
  body += ",\"new_trials\":";
  json::AppendInt64(body, new_trials);
  body += ",\"result\":";
  json::AppendEscaped(body, result_json);
  body += ",\"retryable\":";
  body += retryable ? "true" : "false";
  body += ",\"message\":";
  json::AppendEscaped(body, message);
  body += '}';
  return json::WrapChecksummedBody(kServiceVersionKey, kServiceProtocolVersion,
                                   body);
}

ServiceResponse ServiceResponse::FromJson(std::string_view text,
                                          const std::string& source) {
  const json::ChecksummedDocument doc =
      OpenServiceDocument(text, kResponseContext, source);
  const json::Value root = json::Parse(doc.body, kResponseContext);
  json::ObjectReader reader(root, "response", kResponseContext);
  ServiceResponse response;
  const std::string status = reader.GetString("status");
  if (status != "ok" && status != "error") {
    json::Fail(kResponseContext, "unknown status '" + status + "'");
  }
  response.ok = status == "ok";
  response.source = reader.GetString("source");
  response.sweep_id = reader.GetUint64Hex("sweep_id");
  response.new_trials = reader.GetInt64("new_trials");
  response.result_json = reader.GetString("result");
  response.retryable = reader.GetBool("retryable");
  response.message = reader.GetString("message");
  reader.Finish();
  return response;
}

// --- framing ---------------------------------------------------------------

namespace {

// Blocking read of exactly one byte; 1 on success, 0 on EOF, -1 on error.
int ReadByte(int fd, char* out) {
  while (true) {
    const ssize_t n = ::read(fd, out, 1);
    if (n >= 0) {
      return static_cast<int>(n);
    }
    if (errno != EINTR) {
      return -1;
    }
  }
}

}  // namespace

FrameStatus ReadFrame(int fd, std::string* payload, std::string* error) {
  // Length prefix: decimal digits then '\n'. 20 digits bound any uint64, so
  // anything longer is garbage, not a long frame.
  size_t length = 0;
  int digits = 0;
  while (true) {
    char c = 0;
    const int got = ReadByte(fd, &c);
    if (got < 0) {
      *error = "read failed while reading frame length";
      return FrameStatus::kMalformed;
    }
    if (got == 0) {
      if (digits == 0) {
        return FrameStatus::kEof;
      }
      *error = "stream ended inside a frame length prefix";
      return FrameStatus::kMalformed;
    }
    if (c == '\n') {
      if (digits == 0) {
        *error = "empty frame length prefix";
        return FrameStatus::kMalformed;
      }
      break;
    }
    if (c < '0' || c > '9' || digits >= 20) {
      *error = "malformed frame length prefix";
      return FrameStatus::kMalformed;
    }
    length = length * 10 + static_cast<size_t>(c - '0');
    ++digits;
    if (length > kMaxFrameBytes) {
      *error = "frame length " + std::to_string(length) +
               " exceeds the maximum " + std::to_string(kMaxFrameBytes);
      return FrameStatus::kMalformed;
    }
  }

  payload->clear();
  payload->resize(length);
  size_t have = 0;
  while (have < length) {
    const ssize_t n = ::read(fd, payload->data() + have, length - have);
    if (n > 0) {
      have += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    *error = "stream ended after " + std::to_string(have) + " of " +
             std::to_string(length) + " frame payload bytes";
    return FrameStatus::kMalformed;
  }
  return FrameStatus::kOk;
}

bool WriteFrame(int fd, std::string_view payload) {
  std::string frame = std::to_string(payload.size());
  frame += '\n';
  frame.append(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace longstore
