// The resident sweep service's result memo: finished sweeps keyed by their
// content-derived identity (ComputeSweepId — FNV-1a over the canonical sweep
// description: options, axes, and every cell's index, label and scenario
// CanonicalHash), so two clients describing the same sweep in any order of
// construction hit the same entry.
//
// Two lookup paths, mirroring the two ways a query can be "the same work":
//
//   * exact hit — the request's sweep_id equals a stored entry's: the stored
//     finalized result bytes are returned without simulating anything, and
//     they are byte-identical to a cold run by the determinism contract
//     (they *are* a cold run's bytes);
//   * near hit — an adaptive (kMttdl) request that differs from a stored
//     entry only in relative_precision: entries additionally index under a
//     resume_key (the sweep_id with relative_precision pinned to 0), and a
//     stored run at *looser* precision seeds ResumeSweepCells — continue
//     from the exact Welford accumulator state instead of restarting. A
//     stored *tighter* run is deliberately not served for a looser request:
//     the cold looser run would have stopped at an earlier round, so its
//     bytes differ — and byte-identity outranks the saved trials.
//
// Bounded LRU: both lookups refresh recency; insertion past capacity evicts
// the least recently used entry. Not internally synchronized — the service
// loop is single-threaded (like the fleet supervisor), which keeps every
// cache transition trivially race-free.

#ifndef LONGSTORE_SRC_SERVICE_SWEEP_CACHE_H_
#define LONGSTORE_SRC_SERVICE_SWEEP_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sweep/sweep.h"

namespace longstore {

struct SweepCacheStats {
  int64_t exact_hits = 0;
  int64_t resume_hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
};

// One finished sweep: its identity, the finalized response bytes (served on
// exact hits), and the raw executions (the resume seed for near hits).
struct CachedSweep {
  uint64_t sweep_id = 0;    // exact key: ComputeSweepId of the request
  uint64_t resume_key = 0;  // sweep_id with relative_precision pinned; 0 when
                            // the entry is not resumable (non-adaptive)
  double relative_precision = 0.0;  // the stored *request's* precision
  int64_t total_trials = 0;         // across all cells; resume-savings metric
  std::string result_json;          // SweepResult::ToJson of the cold run
  std::vector<SweepCellExecution> executions;  // raw Welford state, grid order
};

// The outcome of one SweepCache::Lookup: exactly one of the three
// categories, with the entry when there is one.
struct SweepCacheLookup {
  enum class Kind { kExactHit, kResumeHit, kMiss };
  Kind kind = Kind::kMiss;
  // Non-null for kExactHit/kResumeHit; valid until the next Insert.
  const CachedSweep* entry = nullptr;
};

class SweepCache {
 public:
  // capacity = maximum entries held; at least 1.
  explicit SweepCache(size_t capacity);

  // The single counted lookup path: tries an exact hit on `sweep_id`, then
  // (when resume_key != 0) a near hit — the best stored entry sharing
  // `resume_key` whose precision is strictly looser than (greater than)
  // `requested_precision`; among those, the one with the most trials, i.e.
  // the latest point on the shared adaptive round trajectory, so the fewest
  // new trials remain. (A tighter stored run is never served: the cold
  // looser run stops at an earlier round, so its bytes differ, and
  // byte-identity outranks saved trials.)
  //
  // Every call counts exactly one of exact_hits / resume_hits / misses —
  // accounting lives entirely inside the cache, so callers cannot skew the
  // hit ratio by forgetting (or double-counting) an outcome. A hit
  // refreshes recency.
  SweepCacheLookup Lookup(uint64_t sweep_id, uint64_t resume_key,
                          double requested_precision);

  // Records a finished sweep; replaces any entry with the same sweep_id and
  // evicts the least recently used entry past capacity.
  void Insert(CachedSweep entry);

  size_t size() const { return entries_.size(); }
  const SweepCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    CachedSweep sweep;
    std::list<uint64_t>::iterator recency;  // position in recency_
  };

  // Uncounted probes behind Lookup.
  const CachedSweep* FindExact(uint64_t sweep_id);
  const CachedSweep* FindResumable(uint64_t resume_key,
                                   double requested_precision);

  void Touch(Entry& entry);
  void Erase(uint64_t sweep_id);

  size_t capacity_;
  // Most recent at the front; values are sweep_ids.
  std::list<uint64_t> recency_;
  std::unordered_map<uint64_t, Entry> entries_;
  // resume_key -> sweep_ids of the entries carrying it (small sets: one per
  // distinct precision the key has been computed at).
  std::unordered_map<uint64_t, std::vector<uint64_t>> resume_index_;
  SweepCacheStats stats_;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_SERVICE_SWEEP_CACHE_H_
