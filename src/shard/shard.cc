#include "src/shard/shard.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/sweep/accumulator.h"
#include "src/sweep/batch_exec.h"
#include "src/util/json.h"

namespace longstore {
namespace {

constexpr char kSpecContext[] = "ShardSpec::FromJson";
constexpr char kResultContext[] = "ShardResult::FromJson";

const char* EstimandName(SweepOptions::Estimand estimand) {
  switch (estimand) {
    case SweepOptions::Estimand::kMttdl:
      return "mttdl";
    case SweepOptions::Estimand::kLossProbability:
      return "loss_probability";
    case SweepOptions::Estimand::kCensoredMttdl:
      return "censored_mttdl";
    case SweepOptions::Estimand::kWeightedLossProbability:
      return "weighted_loss_probability";
  }
  return "mttdl";
}

SweepOptions::Estimand ParseEstimand(const std::string& name,
                                     const std::string& context) {
  if (name == "mttdl") {
    return SweepOptions::Estimand::kMttdl;
  }
  if (name == "loss_probability") {
    return SweepOptions::Estimand::kLossProbability;
  }
  if (name == "censored_mttdl") {
    return SweepOptions::Estimand::kCensoredMttdl;
  }
  if (name == "weighted_loss_probability") {
    return SweepOptions::Estimand::kWeightedLossProbability;
  }
  json::Fail(context, "unknown estimand \"" + name + "\"");
}

const char* SeedModeName(SweepOptions::SeedMode mode) {
  switch (mode) {
    case SweepOptions::SeedMode::kPerCellDerived:
      return "per_cell_derived";
    case SweepOptions::SeedMode::kSharedRoot:
      return "shared_root";
    case SweepOptions::SeedMode::kScenarioDerived:
      return "scenario_derived";
    case SweepOptions::SeedMode::kCounterV1:
      return "counter_v1";
  }
  return "per_cell_derived";
}

SweepOptions::SeedMode ParseSeedMode(const std::string& name,
                                     const std::string& context) {
  if (name == "per_cell_derived") {
    return SweepOptions::SeedMode::kPerCellDerived;
  }
  if (name == "shared_root") {
    return SweepOptions::SeedMode::kSharedRoot;
  }
  if (name == "scenario_derived") {
    return SweepOptions::SeedMode::kScenarioDerived;
  }
  if (name == "counter_v1") {
    return SweepOptions::SeedMode::kCounterV1;
  }
  json::Fail(context, "unknown seed_mode \"" + name + "\"");
}

void AppendCoordinatesJson(std::string& out,
                           const std::vector<SweepCoordinate>& coordinates) {
  out += '[';
  for (size_t c = 0; c < coordinates.size(); ++c) {
    if (c > 0) {
      out += ',';
    }
    out += "{\"axis\":";
    json::AppendEscaped(out, coordinates[c].axis);
    out += ",\"label\":";
    json::AppendEscaped(out, coordinates[c].label);
    out += ",\"value\":";
    json::AppendDouble(out, coordinates[c].value);
    out += '}';
  }
  out += ']';
}

void AppendAxesJson(std::string& out, const std::vector<std::string>& axes) {
  out += '[';
  for (size_t a = 0; a < axes.size(); ++a) {
    if (a > 0) {
      out += ',';
    }
    json::AppendEscaped(out, axes[a]);
  }
  out += ']';
}

std::vector<std::string> ReadAxes(json::ObjectReader& reader,
                                  const std::string& context) {
  std::vector<std::string> axes;
  for (const json::Value& axis : reader.GetArray("axes")) {
    if (axis.kind != json::Value::Kind::kString) {
      json::Fail(context, "axes entries must be strings");
    }
    axes.push_back(axis.string);
  }
  return axes;
}

// Coordinates must mirror the axis list one to one and in order — that is
// the invariant the table/CSV emitters rely on to build rectangular rows.
std::vector<SweepCoordinate> ReadCoordinates(json::ObjectReader& cell,
                                             const std::vector<std::string>& axes,
                                             size_t cell_index,
                                             const std::string& context) {
  std::vector<SweepCoordinate> coordinates;
  const std::vector<json::Value>& entries = cell.GetArray("coordinates");
  if (entries.size() != axes.size()) {
    json::Fail(context, "cell " + std::to_string(cell_index) + " has " +
                            std::to_string(entries.size()) +
                            " coordinates for " + std::to_string(axes.size()) +
                            " axes");
  }
  for (size_t c = 0; c < entries.size(); ++c) {
    json::ObjectReader coordinate(entries[c], "coordinate", context);
    SweepCoordinate out;
    out.axis = coordinate.GetString("axis");
    out.label = coordinate.GetString("label");
    out.value = coordinate.GetNumber("value");
    coordinate.Finish();
    if (out.axis != axes[c]) {
      json::Fail(context, "cell " + std::to_string(cell_index) + " coordinate " +
                              std::to_string(c) + " names axis \"" + out.axis +
                              "\" but the shard's axis " + std::to_string(c) +
                              " is \"" + axes[c] + "\"");
    }
    coordinates.push_back(std::move(out));
  }
  return coordinates;
}

// Shared header fields of both shard document bodies.
struct ShardHeader {
  int shard_index = 0;
  int shard_count = 1;
  size_t total_cells = 0;
  uint64_t sweep_id = 0;
};

void AppendHeaderJson(std::string& out, int shard_index, int shard_count,
                      size_t total_cells, uint64_t sweep_id) {
  out += "{\"shard_index\":";
  json::AppendInt64(out, shard_index);
  out += ",\"shard_count\":";
  json::AppendInt64(out, shard_count);
  out += ",\"total_cells\":";
  json::AppendInt64(out, static_cast<int64_t>(total_cells));
  out += ",\"sweep_id\":";
  json::AppendUint64Hex(out, sweep_id);
}

// Opens the (possibly enveloped) document, enforcing the version rules:
// version 2 must arrive checksummed, version 1 must not, anything else is
// foreign. Returns the verified body to parse.
json::ChecksummedDocument OpenShardDocument(std::string_view text,
                                            const std::string& context,
                                            const std::string& source) {
  const auto fail = [&](const std::string& what) {
    json::Fail(context, source.empty() ? what : "[" + source + "] " + what);
  };
  const json::ChecksummedDocument doc =
      json::OpenChecksummedDocument(text, "shard_version", context, source);
  if (doc.checksummed && doc.version != kShardProtocolVersion &&
      doc.version != kShardCompatVersion) {
    // Version 2 is a strict subset of version 3 (no ranges, no fragments),
    // so in-flight version-2 documents keep parsing.
    fail("unsupported shard_version " + std::to_string(doc.version) +
         " in a checksummed envelope (this build speaks " +
         std::to_string(kShardProtocolVersion) + " and accepts " +
         std::to_string(kShardCompatVersion) + ")");
  }
  return doc;
}

// Reads the body header. For an unchecksummed (legacy) body the version key
// still lives inside the body and must say kShardLegacyVersion; a flat
// document claiming version 2 is refused outright — accepting it would make
// the integrity layer optional in exactly the silent-corruption cases it
// exists for.
ShardHeader ReadHeader(json::ObjectReader& reader,
                       const json::ChecksummedDocument& doc,
                       const std::string& context, const std::string& source) {
  const auto fail = [&](const std::string& what) {
    json::Fail(context, source.empty() ? what : "[" + source + "] " + what);
  };
  if (!doc.checksummed) {
    const int version = reader.GetInt("shard_version");
    if (version == kShardProtocolVersion || version == kShardCompatVersion) {
      fail("shard_version " + std::to_string(version) +
           " documents must arrive in the checksummed envelope; refusing an "
           "unverifiable document");
    }
    if (version != kShardLegacyVersion) {
      fail("unsupported shard_version " + std::to_string(version) +
           " (this build speaks " + std::to_string(kShardProtocolVersion) +
           "; version " + std::to_string(kShardLegacyVersion) +
           " still accepted unchecksummed)");
    }
  }
  ShardHeader header;
  header.shard_count = reader.GetInt("shard_count");
  if (header.shard_count < 1) {
    json::Fail(context, "shard_count must be >= 1");
  }
  header.shard_index = reader.GetInt("shard_index");
  if (header.shard_index < 0 || header.shard_index >= header.shard_count) {
    json::Fail(context, "shard_index " + std::to_string(header.shard_index) +
                            " is outside [0, shard_count)");
  }
  const int64_t total = reader.GetInt64("total_cells");
  if (total < 1) {
    json::Fail(context, "total_cells must be >= 1");
  }
  header.total_cells = static_cast<size_t>(total);
  if (doc.checksummed) {
    header.sweep_id = reader.GetUint64Hex("sweep_id");
  }
  return header;
}

// Re-throws a schema/parse error with the source document named, unless the
// message already names it (OpenShardDocument and ReadHeader tag their own).
// Keeps json::IntegrityError's type intact for the retryable/fatal split.
[[noreturn]] void RethrowTagged(const std::string& source) {
  try {
    throw;
  } catch (const json::IntegrityError&) {
    throw;
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    if (source.empty() || what.find("[" + source + "]") != std::string::npos) {
      throw;
    }
    throw std::invalid_argument("[" + source + "] " + what);
  }
}

// Tracks which grid indices this document has already claimed.
class CellIndexSet {
 public:
  CellIndexSet(size_t total_cells, std::string context)
      : seen_(total_cells, false), context_(std::move(context)) {}

  size_t Claim(int64_t index) {
    if (index < 0 || static_cast<size_t>(index) >= seen_.size()) {
      json::Fail(context_, "cell index " + std::to_string(index) +
                               " is outside [0, total_cells)");
    }
    const size_t i = static_cast<size_t>(index);
    if (seen_[i]) {
      json::Fail(context_, "duplicate cell index " + std::to_string(index));
    }
    seen_[i] = true;
    return i;
  }

 private:
  std::vector<bool> seen_;
  std::string context_;
};

std::string ListIndices(const std::vector<size_t>& indices) {
  std::string out;
  const size_t shown = std::min<size_t>(indices.size(), 8);
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(indices[i]);
  }
  if (indices.size() > shown) {
    out += ", ... (" + std::to_string(indices.size()) + " total)";
  }
  return out;
}

// The sweep-level option fields, shared verbatim between the shard spec
// body and the sweep-identity string ComputeSweepId hashes.
void AppendOptionsJson(std::string& out, const SweepOptions& options) {
  out += "\"estimand\":\"";
  out += EstimandName(options.estimand);
  out += "\",\"seed_mode\":\"";
  out += SeedModeName(options.seed_mode);
  out += "\",\"mission_hours\":";
  json::AppendDouble(out, options.mission.hours());
  out += ",\"window_hours\":";
  json::AppendDouble(out, options.window.hours());
  out += ",\"bias\":{\"theta_visible\":";
  json::AppendDouble(out, options.bias.theta_visible);
  out += ",\"theta_latent\":";
  json::AppendDouble(out, options.bias.theta_latent);
  out += ",\"tilt_probability\":";
  json::AppendDouble(out, options.bias.tilt_probability);
  out += ",\"force_probability\":";
  json::AppendDouble(out, options.bias.force_probability);
  out += "},\"mc\":{\"trials\":";
  json::AppendInt64(out, options.mc.trials);
  out += ",\"seed\":";
  json::AppendUint64Hex(out, options.mc.seed);
  out += ",\"max_trial_time_hours\":";
  json::AppendDouble(out, options.mc.max_trial_time.hours());
  out += ",\"confidence\":";
  json::AppendDouble(out, options.mc.confidence);
  out += "},\"adaptive\":";
  out += options.adaptive ? "true" : "false";
  out += ",\"relative_precision\":";
  json::AppendDouble(out, options.relative_precision);
  out += ",\"max_trials\":";
  json::AppendInt64(out, options.max_trials);
}

}  // namespace

// --- sweep identity --------------------------------------------------------

uint64_t ComputeSweepId(const std::vector<std::string>& axis_names,
                        const SweepOptions& options,
                        const std::vector<SweepSpec::Cell>& cells) {
  std::string id;
  id.reserve(256 + cells.size() * 64);
  id += "{\"total_cells\":";
  json::AppendInt64(id, static_cast<int64_t>(cells.size()));
  id += ',';
  // Lane count shapes wall clock, never results; it must not move the id.
  SweepOptions canonical = options;
  canonical.mc.threads = 0;
  AppendOptionsJson(id, canonical);
  id += ",\"axes\":";
  AppendAxesJson(id, axis_names);
  id += ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      id += ',';
    }
    id += "{\"index\":";
    json::AppendInt64(id, static_cast<int64_t>(cells[i].index));
    id += ",\"label\":";
    json::AppendEscaped(id, cells[i].label);
    id += ",\"scenario\":";
    json::AppendUint64Hex(id, cells[i].scenario.CanonicalHash());
    id += '}';
  }
  id += "]}";
  return json::Fnv1a64(id);
}

// --- ShardSpec -------------------------------------------------------------

std::string ShardSpec::ToJson() const {
  if (!ranges.empty() && ranges.size() != cells.size()) {
    throw std::invalid_argument(
        "ShardSpec::ToJson: ranges must be empty or match cells one to one");
  }
  std::string body;
  body.reserve(512 + cells.size() * 1024);
  AppendHeaderJson(body, shard_index, shard_count, total_cells, sweep_id);
  body += ',';
  AppendOptionsJson(body, options);
  body += ",\"axes\":";
  AppendAxesJson(body, axis_names);
  body += ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepSpec::Cell& cell = cells[i];
    if (i > 0) {
      body += ',';
    }
    body += "{\"index\":";
    json::AppendInt64(body, static_cast<int64_t>(cell.index));
    body += ",\"label\":";
    json::AppendEscaped(body, cell.label);
    body += ",\"coordinates\":";
    AppendCoordinatesJson(body, cell.coordinates);
    // A partial cell (version 3) carries its trial range; whole cells omit
    // the key so whole-cell documents keep the version-2 body shape.
    if (!ranges.empty() && ranges[i].end >= 0) {
      body += ",\"range\":{\"begin\":";
      json::AppendInt64(body, ranges[i].begin);
      body += ",\"end\":";
      json::AppendInt64(body, ranges[i].end);
      body += '}';
    }
    // The scenario's canonical JSON, spliced verbatim: the scenario
    // subtree's bytes — and therefore CanonicalHash and kScenarioDerived
    // seeds — are exactly the driver's.
    body += ",\"scenario\":";
    body += cell.scenario.ToJson();
    body += '}';
  }
  body += "]}";
  return json::WrapChecksummedBody("shard_version", kShardProtocolVersion, body);
}

ShardSpec ShardSpec::FromJson(std::string_view text, const std::string& source) {
  try {
    return FromJsonUntagged(text, source);
  } catch (...) {
    RethrowTagged(source);
  }
}

ShardSpec ShardSpec::FromJsonUntagged(std::string_view text,
                                      const std::string& source) {
  const json::ChecksummedDocument doc =
      OpenShardDocument(text, kSpecContext, source);
  const json::Value root = json::Parse(doc.body, kSpecContext);
  json::ObjectReader reader(root, "shard", kSpecContext);
  const ShardHeader header = ReadHeader(reader, doc, kSpecContext, source);

  ShardSpec shard;
  shard.shard_index = header.shard_index;
  shard.shard_count = header.shard_count;
  shard.total_cells = header.total_cells;
  shard.sweep_id = header.sweep_id;
  shard.options.estimand = ParseEstimand(reader.GetString("estimand"), kSpecContext);
  shard.options.seed_mode = ParseSeedMode(reader.GetString("seed_mode"), kSpecContext);
  shard.options.mission = Duration::Hours(reader.GetNumber("mission_hours"));
  shard.options.window = Duration::Hours(reader.GetNumber("window_hours"));
  {
    json::ObjectReader bias(reader.GetObject("bias"), "bias", kSpecContext);
    shard.options.bias.theta_visible = bias.GetNumber("theta_visible");
    shard.options.bias.theta_latent = bias.GetNumber("theta_latent");
    shard.options.bias.tilt_probability = bias.GetNumber("tilt_probability");
    shard.options.bias.force_probability = bias.GetNumber("force_probability");
    bias.Finish();
  }
  {
    json::ObjectReader mc(reader.GetObject("mc"), "mc", kSpecContext);
    shard.options.mc.trials = mc.GetInt64("trials");
    shard.options.mc.seed = mc.GetUint64Hex("seed");
    shard.options.mc.max_trial_time = Duration::Hours(mc.GetNumber("max_trial_time_hours"));
    shard.options.mc.confidence = mc.GetNumber("confidence");
    mc.Finish();
  }
  shard.options.adaptive = reader.GetBool("adaptive");
  shard.options.relative_precision = reader.GetNumber("relative_precision");
  shard.options.max_trials = reader.GetInt64("max_trials");
  shard.axis_names = ReadAxes(reader, kSpecContext);

  CellIndexSet seen(header.total_cells, kSpecContext);
  bool any_range = false;
  for (const json::Value& entry : reader.GetArray("cells")) {
    json::ObjectReader cell(entry, "cell", kSpecContext);
    SweepSpec::Cell out;
    out.index = seen.Claim(cell.GetInt64("index"));
    out.label = cell.GetString("label");
    out.coordinates = ReadCoordinates(cell, shard.axis_names, out.index, kSpecContext);
    ShardCellRange range;
    if (entry.Find("range") != nullptr) {
      json::ObjectReader r(cell.GetObject("range"), "range", kSpecContext);
      range.begin = r.GetInt64("begin");
      range.end = r.GetInt64("end");
      r.Finish();
      if (range.begin < 0 || range.end <= range.begin) {
        json::Fail(kSpecContext, "cell " + std::to_string(out.index) +
                                     " has an invalid trial range [" +
                                     std::to_string(range.begin) + ", " +
                                     std::to_string(range.end) + ")");
      }
      any_range = true;
    }
    out.scenario = Scenario::FromJsonValue(cell.GetObject("scenario"));
    cell.Finish();
    shard.cells.push_back(std::move(out));
    shard.ranges.push_back(range);
  }
  if (!any_range) {
    shard.ranges.clear();  // whole-cell documents carry no range vector
  }
  reader.Finish();
  return shard;
}

// --- ShardPlan -------------------------------------------------------------

ShardPlan::ShardPlan(const SweepSpec& spec, const SweepOptions& options,
                     int shard_count)
    : ShardPlan(spec.AxisNames(), options, spec.BuildCells(), shard_count) {}

ShardPlan::ShardPlan(std::vector<std::string> axis_names,
                     const SweepOptions& options,
                     std::vector<SweepSpec::Cell> cells, int shard_count) {
  if (shard_count < 1) {
    throw std::invalid_argument("ShardPlan: shard_count must be >= 1");
  }
  ValidateSweepOptions(options);
  if (cells.empty()) {
    throw std::invalid_argument("ShardPlan: the sweep has no cells");
  }
  // Fail in the driver, with the driver's clean message, rather than in K
  // worker processes at once.
  ValidateSweepCells(cells);

  axis_names_ = std::move(axis_names);
  total_cells_ = cells.size();
  const uint64_t sweep_id = ComputeSweepId(axis_names_, options, cells);
  shards_.resize(static_cast<size_t>(shard_count));
  for (int k = 0; k < shard_count; ++k) {
    ShardSpec& shard = shards_[static_cast<size_t>(k)];
    shard.shard_index = k;
    shard.shard_count = shard_count;
    shard.total_cells = total_cells_;
    shard.sweep_id = sweep_id;
    shard.axis_names = axis_names_;
    shard.options = options;
    // Lane count is the worker's own business (and never changes results).
    shard.options.mc.threads = 0;
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    SweepSpec::Cell& cell = cells[i];
    // The shard document is scenario-native: the legacy flat view (if any)
    // has already been converted, bit-identically, by BuildCells.
    cell.config = StorageSimConfig{};
    cell.from_legacy = false;
    shards_[i % static_cast<size_t>(shard_count)].cells.push_back(std::move(cell));
  }
}

// --- RunShard --------------------------------------------------------------

ShardResult RunShard(const ShardSpec& shard, WorkerPool* pool) {
  ValidateSweepOptions(shard.options);
  ValidateSweepCells(shard.cells);
  if (!shard.ranges.empty() && shard.ranges.size() != shard.cells.size()) {
    throw std::invalid_argument(
        "RunShard: ranges must be empty or match cells one to one");
  }
  WorkerPool& exec_pool = pool != nullptr ? *pool : WorkerPool::Shared();

  ShardResult result;
  result.shard_index = shard.shard_index;
  result.shard_count = shard.shard_count;
  result.total_cells = shard.total_cells;
  result.sweep_id = shard.sweep_id;
  result.estimand = shard.options.estimand;
  result.confidence = shard.options.mc.confidence;
  result.axis_names = shard.axis_names;
  if (shard.ranges.empty()) {
    result.cells = RunSweepCells(exec_pool, shard.cells, shard.options);
    return result;
  }

  // Split whole cells (classic execution) from partial trial ranges, which
  // run as raw per-block accumulators so the coordinator can reassemble a
  // byte-identical cell from any block-aligned tiling.
  std::vector<SweepSpec::Cell> whole;
  std::vector<size_t> ranged;
  for (size_t i = 0; i < shard.cells.size(); ++i) {
    if (shard.ranges[i].end < 0) {
      whole.push_back(shard.cells[i]);
    } else {
      ranged.push_back(i);
    }
  }
  if (!ranged.empty()) {
    if (shard.options.seed_mode != SweepOptions::SeedMode::kCounterV1) {
      throw std::invalid_argument(
          "RunShard: partial trial ranges require seed_mode counter_v1 (any "
          "other mode cannot reproduce a trial's stream from its index)");
    }
    if (shard.options.adaptive) {
      throw std::invalid_argument(
          "RunShard: partial trial ranges require non-adaptive execution; "
          "adaptive continuation is coordinated by the driver");
    }
  }
  if (!whole.empty()) {
    result.cells = RunSweepCells(exec_pool, whole, shard.options);
  }
  for (const size_t i : ranged) {
    const SweepSpec::Cell& cell = shard.cells[i];
    const ShardCellRange& range = shard.ranges[i];
    if (range.end > shard.options.mc.trials) {
      throw std::invalid_argument(
          "RunShard: cell " + std::to_string(cell.index) + " trial range [" +
          std::to_string(range.begin) + ", " + std::to_string(range.end) +
          ") extends past mc.trials = " +
          std::to_string(shard.options.mc.trials));
    }
    ShardCellFragment fragment;
    fragment.index = cell.index;
    fragment.label = cell.label;
    fragment.coordinates = cell.coordinates;
    fragment.trial_begin = range.begin;
    fragment.trial_end = range.end;
    fragment.cell_trials = shard.options.mc.trials;
    fragment.blocks = RunCellTrialRange(exec_pool, cell, shard.options,
                                        range.begin, range.end);
    result.fragments.push_back(std::move(fragment));
  }
  return result;
}

// --- ShardResult -----------------------------------------------------------

std::string ShardResult::ToJson() const {
  std::string body;
  body.reserve(512 + cells.size() * 1024);
  AppendHeaderJson(body, shard_index, shard_count, total_cells, sweep_id);
  body += ",\"estimand\":\"";
  body += EstimandName(estimand);
  body += "\",\"confidence\":";
  json::AppendDouble(body, confidence);
  body += ",\"axes\":";
  AppendAxesJson(body, axis_names);
  body += ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    const SweepCellExecution& cell = cells[i];
    if (i > 0) {
      body += ',';
    }
    body += "{\"index\":";
    json::AppendInt64(body, static_cast<int64_t>(cell.index));
    body += ",\"label\":";
    json::AppendEscaped(body, cell.label);
    body += ",\"coordinates\":";
    AppendCoordinatesJson(body, cell.coordinates);
    body += ",\"trials\":";
    json::AppendInt64(body, cell.trials);
    body += ",\"rounds\":";
    json::AppendInt64(body, cell.rounds);
    body += ",\"half_width_history\":[";
    for (size_t h = 0; h < cell.half_width_history.size(); ++h) {
      if (h > 0) {
        body += ',';
      }
      json::AppendDouble(body, cell.half_width_history[h]);
    }
    body += "],\"accumulator\":";
    AppendTrialAccumulatorJson(body, cell.acc);
    body += '}';
  }
  body += ']';
  // Partial-cell results (version 3) ride in a separate array; whole-cell
  // documents omit the key, keeping the version-2 body shape byte-for-byte.
  if (!fragments.empty()) {
    body += ",\"fragments\":[";
    for (size_t i = 0; i < fragments.size(); ++i) {
      const ShardCellFragment& fragment = fragments[i];
      if (i > 0) {
        body += ',';
      }
      body += "{\"index\":";
      json::AppendInt64(body, static_cast<int64_t>(fragment.index));
      body += ",\"label\":";
      json::AppendEscaped(body, fragment.label);
      body += ",\"coordinates\":";
      AppendCoordinatesJson(body, fragment.coordinates);
      body += ",\"trial_begin\":";
      json::AppendInt64(body, fragment.trial_begin);
      body += ",\"trial_end\":";
      json::AppendInt64(body, fragment.trial_end);
      body += ",\"cell_trials\":";
      json::AppendInt64(body, fragment.cell_trials);
      body += ",\"blocks\":[";
      for (size_t b = 0; b < fragment.blocks.size(); ++b) {
        if (b > 0) {
          body += ',';
        }
        AppendTrialAccumulatorJson(body, fragment.blocks[b]);
      }
      body += "]}";
    }
    body += ']';
  }
  body += '}';
  return json::WrapChecksummedBody("shard_version", kShardProtocolVersion, body);
}

ShardResult ShardResult::FromJson(std::string_view text, const std::string& source) {
  try {
    return FromJsonUntagged(text, source);
  } catch (...) {
    RethrowTagged(source);
  }
}

ShardResult ShardResult::FromJsonUntagged(std::string_view text,
                                          const std::string& source) {
  const json::ChecksummedDocument doc =
      OpenShardDocument(text, kResultContext, source);
  const json::Value root = json::Parse(doc.body, kResultContext);
  json::ObjectReader reader(root, "shard result", kResultContext);
  const ShardHeader header = ReadHeader(reader, doc, kResultContext, source);

  ShardResult result;
  result.shard_index = header.shard_index;
  result.shard_count = header.shard_count;
  result.total_cells = header.total_cells;
  result.sweep_id = header.sweep_id;
  result.estimand = ParseEstimand(reader.GetString("estimand"), kResultContext);
  result.confidence = reader.GetNumber("confidence");
  result.axis_names = ReadAxes(reader, kResultContext);

  CellIndexSet seen(header.total_cells, kResultContext);
  for (const json::Value& entry : reader.GetArray("cells")) {
    json::ObjectReader cell(entry, "cell", kResultContext);
    SweepCellExecution out;
    out.index = seen.Claim(cell.GetInt64("index"));
    out.label = cell.GetString("label");
    out.coordinates = ReadCoordinates(cell, result.axis_names, out.index, kResultContext);
    out.trials = cell.GetInt64("trials");
    if (out.trials < 0) {
      json::Fail(kResultContext, "cell " + std::to_string(out.index) +
                                     " has a negative trial count");
    }
    out.rounds = cell.GetInt("rounds");
    if (out.rounds < 0) {
      json::Fail(kResultContext, "cell " + std::to_string(out.index) +
                                     " has a negative round count");
    }
    for (const json::Value& half_width : cell.GetArray("half_width_history")) {
      // Accept the "inf"/"-inf"/"nan" string spellings like every other
      // double in the protocol: an unconverged cell can legitimately report
      // an infinite half-width, and the emitter writes it as a string.
      if (half_width.kind == json::Value::Kind::kString) {
        if (half_width.string == "inf") {
          out.half_width_history.push_back(std::numeric_limits<double>::infinity());
          continue;
        }
        if (half_width.string == "-inf") {
          out.half_width_history.push_back(-std::numeric_limits<double>::infinity());
          continue;
        }
        if (half_width.string == "nan") {
          out.half_width_history.push_back(std::numeric_limits<double>::quiet_NaN());
          continue;
        }
      }
      if (half_width.kind != json::Value::Kind::kNumber) {
        json::Fail(kResultContext, "half_width_history entries must be numbers");
      }
      out.half_width_history.push_back(half_width.number);
    }
    out.acc = TrialAccumulatorFromJsonValue(cell.GetObject("accumulator"),
                                            kResultContext);
    cell.Finish();
    result.cells.push_back(std::move(out));
  }
  // "fragments" is optional (absent from version-2 documents and from
  // whole-cell version-3 documents). A cell must arrive either whole or as
  // fragments, never both, so fragment indices share the cells' claim set.
  if (root.Find("fragments") != nullptr) {
    for (const json::Value& entry : reader.GetArray("fragments")) {
      json::ObjectReader frag(entry, "fragment", kResultContext);
      ShardCellFragment out;
      out.index = seen.Claim(frag.GetInt64("index"));
      out.label = frag.GetString("label");
      out.coordinates =
          ReadCoordinates(frag, result.axis_names, out.index, kResultContext);
      out.trial_begin = frag.GetInt64("trial_begin");
      out.trial_end = frag.GetInt64("trial_end");
      out.cell_trials = frag.GetInt64("cell_trials");
      if (out.cell_trials < 1 || out.trial_begin < 0 ||
          out.trial_end <= out.trial_begin || out.trial_end > out.cell_trials) {
        json::Fail(kResultContext,
                   "cell " + std::to_string(out.index) +
                       " fragment range [" + std::to_string(out.trial_begin) +
                       ", " + std::to_string(out.trial_end) +
                       ") is invalid for " + std::to_string(out.cell_trials) +
                       " trials");
      }
      for (const json::Value& block : frag.GetArray("blocks")) {
        out.blocks.push_back(TrialAccumulatorFromJsonValue(block, kResultContext));
      }
      const int64_t expected_blocks =
          (out.trial_end - 1) / kTrialBlockSize -
          out.trial_begin / kTrialBlockSize + 1;
      if (static_cast<int64_t>(out.blocks.size()) != expected_blocks) {
        json::Fail(kResultContext,
                   "cell " + std::to_string(out.index) + " fragment [" +
                       std::to_string(out.trial_begin) + ", " +
                       std::to_string(out.trial_end) + ") carries " +
                       std::to_string(out.blocks.size()) +
                       " blocks; the aligned partition has " +
                       std::to_string(expected_blocks));
      }
      frag.Finish();
      result.fragments.push_back(std::move(out));
    }
  }
  reader.Finish();
  return result;
}

// --- ShardMerger -----------------------------------------------------------

namespace {

// "shard 3 (k3.result.json)" / "shard 3" — the retry-log-actionable name of
// a result document, used in every merger failure message.
std::string DescribeShard(int shard_index, const std::string& source) {
  std::string out = "shard " + std::to_string(shard_index);
  if (!source.empty()) {
    out += " (" + source + ")";
  }
  return out;
}

}  // namespace

void ShardMerger::Add(ShardResult result, const std::string& source) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("ShardMerger: " + what);
  };
  const std::string who = DescribeShard(result.shard_index, source);
  if (result.total_cells < 1) {
    fail(who + ": total_cells must be >= 1");
  }
  if (result.shard_count < 1 || result.shard_index < 0 ||
      result.shard_index >= result.shard_count) {
    fail(who + ": shard_index " + std::to_string(result.shard_index) +
         " is outside [0, shard_count)");
  }
  // Detach the payload before any header bookkeeping so keeping the first
  // result's header never copies its (potentially large) cell vector.
  std::vector<SweepCellExecution> incoming = std::move(result.cells);
  result.cells.clear();
  std::vector<ShardCellFragment> incoming_fragments = std::move(result.fragments);
  result.fragments.clear();
  if (!have_header_) {
    have_header_ = true;
    header_ = std::move(result);
    first_source_ = source;
    cells_.resize(header_.total_cells);
    cell_sources_.resize(header_.total_cells);
    pending_fragments_.resize(header_.total_cells);
  } else {
    const std::string first = DescribeShard(header_.shard_index, first_source_);
    if (result.estimand != header_.estimand) {
      fail(who + " was run with a different estimand than " + first);
    }
    if (result.confidence != header_.confidence) {
      fail(who + " was run at a different confidence than " + first);
    }
    if (result.total_cells != header_.total_cells) {
      fail(who + " claims " + std::to_string(result.total_cells) +
           " total cells, " + first + " " + std::to_string(header_.total_cells));
    }
    if (result.sweep_id != 0 && header_.sweep_id != 0) {
      // Version-2 documents prove membership by sweep identity; shard_count
      // is provenance only (a fleet driver that re-partitions failed shards
      // legitimately emits documents with differing counts).
      if (result.sweep_id != header_.sweep_id) {
        fail(who + " belongs to a different sweep than " + first +
             " (sweep_id mismatch)");
      }
    } else if (result.shard_count != header_.shard_count) {
      fail(who + " claims " + std::to_string(result.shard_count) +
           " shards, " + first + " " + std::to_string(header_.shard_count));
    }
    if (result.axis_names != header_.axis_names) {
      fail(who + " has a different axis list than " + first);
    }
  }
  for (SweepCellExecution& cell : incoming) {
    if (cell.index >= cells_.size()) {
      fail(who + ": cell index " + std::to_string(cell.index) +
           " is outside [0, total_cells)");
    }
    if (cells_[cell.index].has_value()) {
      fail("cell " + std::to_string(cell.index) + " (\"" + cell.label +
           "\") arrived twice: first from " + cell_sources_[cell.index] +
           ", again from " + who +
           "; each cell must be owned by exactly one shard");
    }
    if (!pending_fragments_[cell.index].empty()) {
      fail("cell " + std::to_string(cell.index) + " (\"" + cell.label +
           "\") arrived whole from " + who +
           " after fragments of it were already received; a cell is owned "
           "either whole or as a fragment tiling, never both");
    }
    cells_[cell.index] = std::move(cell);
    cell_sources_[cell.index] = who;
    ++received_;
  }
  for (ShardCellFragment& fragment : incoming_fragments) {
    AddFragment(std::move(fragment), who);
  }
}

void ShardMerger::AddFragment(ShardCellFragment fragment, const std::string& who) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("ShardMerger: " + what);
  };
  if (fragment.index >= cells_.size()) {
    fail(who + ": fragment cell index " + std::to_string(fragment.index) +
         " is outside [0, total_cells)");
  }
  if (cells_[fragment.index].has_value()) {
    fail("cell " + std::to_string(fragment.index) + " (\"" + fragment.label +
         "\") received a fragment from " + who +
         " after the whole cell arrived from " + cell_sources_[fragment.index] +
         "; a cell is owned either whole or as a fragment tiling, never both");
  }
  if (fragment.cell_trials < 1 || fragment.trial_begin < 0 ||
      fragment.trial_end <= fragment.trial_begin ||
      fragment.trial_end > fragment.cell_trials) {
    fail(who + ": cell " + std::to_string(fragment.index) +
         " fragment range [" + std::to_string(fragment.trial_begin) + ", " +
         std::to_string(fragment.trial_end) + ") is invalid for " +
         std::to_string(fragment.cell_trials) + " trials");
  }
  // Interior tiling boundaries must land on block edges: the canonical fold
  // is per 256-trial block, and an unaligned seam would split a block's
  // Welford accumulation differently than single-process execution.
  if (fragment.trial_begin % kTrialBlockSize != 0 ||
      (fragment.trial_end % kTrialBlockSize != 0 &&
       fragment.trial_end != fragment.cell_trials)) {
    fail(who + ": cell " + std::to_string(fragment.index) + " fragment [" +
         std::to_string(fragment.trial_begin) + ", " +
         std::to_string(fragment.trial_end) +
         ") is not aligned to the " + std::to_string(kTrialBlockSize) +
         "-trial block partition");
  }
  const int64_t expected_blocks = (fragment.trial_end - 1) / kTrialBlockSize -
                                  fragment.trial_begin / kTrialBlockSize + 1;
  if (static_cast<int64_t>(fragment.blocks.size()) != expected_blocks) {
    fail(who + ": cell " + std::to_string(fragment.index) + " fragment [" +
         std::to_string(fragment.trial_begin) + ", " +
         std::to_string(fragment.trial_end) + ") carries " +
         std::to_string(fragment.blocks.size()) + " blocks, expected " +
         std::to_string(expected_blocks));
  }
  std::vector<ShardCellFragment>& parts = pending_fragments_[fragment.index];
  for (const ShardCellFragment& other : parts) {
    if (other.label != fragment.label ||
        other.cell_trials != fragment.cell_trials) {
      fail("cell " + std::to_string(fragment.index) + ": fragment from " +
           who + " disagrees with an earlier fragment about the cell's label "
           "or total trial count");
    }
    if (fragment.trial_begin < other.trial_end &&
        other.trial_begin < fragment.trial_end) {
      fail("cell " + std::to_string(fragment.index) + ": fragment [" +
           std::to_string(fragment.trial_begin) + ", " +
           std::to_string(fragment.trial_end) + ") from " + who +
           " overlaps fragment [" + std::to_string(other.trial_begin) + ", " +
           std::to_string(other.trial_end) + ")");
    }
  }
  parts.push_back(std::move(fragment));

  // Assemble the moment the tiling is complete. Fragments are pairwise
  // disjoint subranges of [0, cell_trials), so covering exactly cell_trials
  // trials means they tile the whole cell.
  const int64_t cell_trials = parts.front().cell_trials;
  int64_t covered = 0;
  for (const ShardCellFragment& part : parts) {
    covered += part.trial_end - part.trial_begin;
  }
  if (covered != cell_trials) {
    return;
  }
  std::sort(parts.begin(), parts.end(),
            [](const ShardCellFragment& a, const ShardCellFragment& b) {
              return a.trial_begin < b.trial_begin;
            });
  // Fold the per-block accumulators in ascending trial order — the exact
  // fold a single process performs — so the assembled cell is byte-identical
  // to unsharded non-adaptive execution (trials = cell total, one round, no
  // half-width history).
  SweepCellExecution out;
  out.index = parts.front().index;
  out.label = parts.front().label;
  out.coordinates = std::move(parts.front().coordinates);
  out.trials = cell_trials;
  out.rounds = 1;
  for (const ShardCellFragment& part : parts) {
    for (const TrialAccumulator& block : part.blocks) {
      out.acc.MergeFrom(block);
    }
  }
  const size_t index = out.index;
  cells_[index] = std::move(out);
  cell_sources_[index] = who;  // the completing contributor
  pending_fragments_[index].clear();
  ++received_;
}

void ShardMerger::AddJson(std::string_view json, const std::string& source) {
  Add(ShardResult::FromJson(json, source), source);
}

bool ShardMerger::complete() const {
  return have_header_ && received_ == cells_.size();
}

std::vector<size_t> ShardMerger::MissingCells() const {
  std::vector<size_t> missing;
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (!cells_[i].has_value()) {
      missing.push_back(i);
    }
  }
  return missing;
}

SweepResult ShardMerger::Finish() const {
  if (!have_header_) {
    throw std::invalid_argument("ShardMerger: no shard results were added");
  }
  if (!complete()) {
    throw std::invalid_argument("ShardMerger: incomplete merge; missing cells " +
                                ListIndices(MissingCells()));
  }
  // Cells were slotted by grid index, so this fold is independent of both
  // the partition and the arrival order — the property the merge tests pin.
  // The copy (rather than a move) keeps Finish const and re-callable; cell
  // payloads are small (a few hundred bytes each), so even huge grids pay
  // little.
  std::vector<SweepCellExecution> executions;
  executions.reserve(cells_.size());
  for (const std::optional<SweepCellExecution>& cell : cells_) {
    executions.push_back(*cell);
  }
  return FinalizeSweepCells(std::move(executions), header_.axis_names,
                            header_.estimand, header_.confidence);
}

SweepResult ShardMerger::FinishPartial() const {
  if (!have_header_) {
    throw std::invalid_argument("ShardMerger: no shard results were added");
  }
  // Like Finish(), but tolerate gaps: only the cells that actually arrived
  // are finalized. They keep their true grid indices, so each present cell
  // produces exactly the bytes it would in the complete merge and the
  // absent indices stay reportable via MissingCells().
  std::vector<SweepCellExecution> executions;
  executions.reserve(received_);
  for (const std::optional<SweepCellExecution>& cell : cells_) {
    if (cell.has_value()) {
      executions.push_back(*cell);
    }
  }
  return FinalizeSweepCells(std::move(executions), header_.axis_names,
                            header_.estimand, header_.confidence);
}

std::vector<SweepCellExecution> ShardMerger::TakeExecutions() {
  if (!have_header_) {
    throw std::invalid_argument("ShardMerger: no shard results were added");
  }
  if (!complete()) {
    throw std::invalid_argument(
        "ShardMerger: incomplete merge; cannot take executions, missing cells " +
        ListIndices(MissingCells()));
  }
  std::vector<SweepCellExecution> executions;
  executions.reserve(cells_.size());
  for (std::optional<SweepCellExecution>& cell : cells_) {
    executions.push_back(std::move(*cell));
    cell.reset();
  }
  received_ = 0;
  return executions;
}

}  // namespace longstore
