// Sharded sweep fan-out: partition a SweepSpec into self-contained shard
// documents, execute each shard in a separate process (tools/sweep_worker),
// and merge the worker outputs back into a SweepResult that is byte-for-byte
// identical to the single-process run.
//
// Long-term archives are exactly the regime where "re-run it and hope" is
// not verification: a millennia-scale figure must be *provably* the same
// number no matter how many machines computed it. The protocol therefore
// trades no precision anywhere — scenarios travel as their canonical JSON
// (identity-preserving by construction), seeds as exact hex strings, and
// partial aggregates as raw Welford state — and the merge is cell-granular:
//
//   * a shard owns whole cells (every trial of a cell runs in exactly one
//     worker), so each cell's block fold happens in trial order inside one
//     process, exactly as the single-process runner folds it;
//   * cell seeds derive from the spec seed plus the cell's label hash
//     (kPerCellDerived), the spec seed alone (kSharedRoot), or the
//     scenario's content hash (kScenarioDerived) — never from the cell's
//     position, so partitioning cannot move any cell's trial streams;
//   * the merger places finished cells by their grid index, so shard count
//     and arrival order are invisible in the output.
//
// Together: ShardMerger(RunShard(plan)) == SweepRunner::Run(spec) bit for
// bit, for any shard count and any merge order (tests/shard_*_test.cc pin
// this; CI diffs a 3-process run of a golden figure against the
// single-process output).
//
// Wire format and versioning rules: src/shard/README.md. Everything ingested
// from another process is parsed strictly (src/util/json.h): malformed,
// truncated, duplicate-cell, missing-cell and version-mismatched documents
// are rejected with a precise std::invalid_argument, never undefined
// behavior. Since protocol version 2, every document additionally travels in
// a checksummed envelope (byte length + FNV-1a over the body, verified on
// the raw bytes before parsing — json::OpenChecksummedDocument), so a
// transport that corrupts silently produces a retryable
// json::IntegrityError, never a wrong figure.

#ifndef LONGSTORE_SRC_SHARD_SHARD_H_
#define LONGSTORE_SRC_SHARD_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sweep/sweep.h"

namespace longstore {

// Bumped whenever the shard JSON schema changes shape or meaning. A worker
// or merger speaking a different version rejects the document outright:
// silently reinterpreting a foreign schema could change figures without
// failing a single test. Version 2 added the checksum envelope and the
// sweep_id; version 3 added optional trial-range cells (specs) and cell
// fragments (results) for kCounterV1 sweeps. Version-2 documents are a
// strict subset of version 3 and stay accepted checksummed; version-1
// documents (unchecksummed, no sweep_id) are still accepted for one release
// so in-flight shard files survive the upgrade.
inline constexpr int kShardProtocolVersion = 3;
inline constexpr int kShardCompatVersion = 2;
inline constexpr int kShardLegacyVersion = 1;

// Identity of the *whole* sweep a shard belongs to: FNV-1a over the sweep's
// canonical description (options, axes, and every cell's index, label and
// scenario hash). Stamped into every version-2 shard document and echoed by
// workers, it is the merger's proof that results belong together — stronger
// than the old equal-shard-count rule, and independent of how the driver
// partitioned (or re-partitioned, after failures) the cells into workers.
uint64_t ComputeSweepId(const std::vector<std::string>& axis_names,
                        const SweepOptions& options,
                        const std::vector<SweepSpec::Cell>& cells);

// Trial ownership of one shard cell: trials [begin, end) of the cell. The
// sentinel end = -1 means the shard owns every trial (a whole cell, the
// pre-version-3 behavior). Partial ranges require SeedMode::kCounterV1
// (counter streams make trial t's draws independent of trials 0..t-1) and a
// non-adaptive spec; RunShard enforces both.
struct ShardCellRange {
  int64_t begin = 0;
  int64_t end = -1;
};

// One shard: a self-contained slice of a sweep that a worker process can
// execute with no access to the driver's memory. Carries the full options
// (estimand, horizons, bias, seed, adaptive policy) plus the shard's cells —
// label, grid index, axis coordinates, and the scenario as canonical JSON.
// mc.threads is deliberately NOT part of the document: it only shapes each
// worker's wall clock (never results), so it stays a per-process concern
// (the sweep_worker --threads flag).
struct ShardSpec {
  int shard_index = 0;
  int shard_count = 1;
  // Cell count of the *full* sweep; the merger uses it to prove
  // completeness before finalizing.
  size_t total_cells = 0;
  // ComputeSweepId of the full sweep; 0 on documents parsed from the
  // version-1 wire format (which predates it).
  uint64_t sweep_id = 0;
  std::vector<std::string> axis_names;
  SweepOptions options;
  std::vector<SweepSpec::Cell> cells;  // scenario-native; from_legacy unset
  // Per-cell trial ranges, parallel to `cells`. Empty (the common case, and
  // every pre-version-3 document) means each cell is owned whole.
  std::vector<ShardCellRange> ranges;

  // Canonical JSON: the body (fixed key order, exact doubles, hex seed)
  // wrapped in the checksummed envelope.
  std::string ToJson() const;
  // Strict inverse; rejects unknown/missing/mistyped keys, version
  // mismatches, envelope length/checksum mismatches (json::IntegrityError),
  // duplicate or out-of-range cell indices, and coordinate rows that do not
  // match the axis list. `source` (e.g. the file name) prefixes every error
  // so drivers can log which shard document failed. Does not run semantic
  // validation (Scenario::Validate etc.) — RunShard does, exactly as
  // SweepRunner::Run would.
  static ShardSpec FromJson(std::string_view json, const std::string& source = "");

 private:
  static ShardSpec FromJsonUntagged(std::string_view json,
                                    const std::string& source);
};

// Partitions a sweep into `shard_count` ShardSpecs, round-robin by cell
// index so adjacent (typically similar-cost) grid cells land on different
// shards. Validates options and every cell up front — a plan that builds is
// safe to ship. A shard may end up empty when shard_count exceeds the cell
// count; its worker returns an empty (but well-formed) result.
class ShardPlan {
 public:
  ShardPlan(const SweepSpec& spec, const SweepOptions& options, int shard_count);
  // Plans already-materialized cells (a deserialized shard/service document,
  // where no SweepSpec exists to rebuild them from). Cells keep their grid
  // indices and coordinates, so the plan is identical to one built from the
  // originating spec.
  ShardPlan(std::vector<std::string> axis_names, const SweepOptions& options,
            std::vector<SweepSpec::Cell> cells, int shard_count);

  const std::vector<ShardSpec>& shards() const { return shards_; }
  size_t total_cells() const { return total_cells_; }
  const std::vector<std::string>& axis_names() const { return axis_names_; }

 private:
  std::vector<ShardSpec> shards_;
  std::vector<std::string> axis_names_;
  size_t total_cells_ = 0;
};

// A trial-range fragment of one cell (version 3, kCounterV1 only): trials
// [trial_begin, trial_end) of a cell whose full run is `cell_trials` trials.
// Instead of one folded accumulator it carries the per-block accumulators of
// the canonical index-aligned partition (src/sweep/batch_exec.h), so the
// merger can fold a complete tiling of [0, cell_trials) in trial order and
// obtain *exactly* the single-process accumulator — Welford folds are not
// bitwise-associative, so shipping the blocks (not a pre-fold) is what makes
// the reassembly byte-identical.
struct ShardCellFragment {
  size_t index = 0;
  std::string label;
  std::vector<SweepCoordinate> coordinates;
  int64_t trial_begin = 0;
  int64_t trial_end = 0;
  int64_t cell_trials = 0;  // full-cell trial count the tiling must cover
  std::vector<TrialAccumulator> blocks;  // aligned partition, trial order
};

// A worker's output: the raw per-cell executions (folded trial
// accumulators plus bookkeeping), with enough header to let the merger
// prove the results belong together. Finalization (CIs, estimator math)
// happens once, in the merger, from exact deserialized state.
struct ShardResult {
  int shard_index = 0;
  int shard_count = 1;
  size_t total_cells = 0;
  // Echoed verbatim from the shard spec the worker executed; 0 for
  // version-1 documents.
  uint64_t sweep_id = 0;
  SweepOptions::Estimand estimand = SweepOptions::Estimand::kMttdl;
  double confidence = 0.95;
  std::vector<std::string> axis_names;
  std::vector<SweepCellExecution> cells;
  // Trial-range fragments of cells this shard ran partially (version 3);
  // empty on whole-cell shards and on every pre-version-3 document.
  std::vector<ShardCellFragment> fragments;

  std::string ToJson() const;
  // Verifies the envelope (json::IntegrityError on length/checksum
  // mismatch), then parses strictly; `source` names the document in errors.
  static ShardResult FromJson(std::string_view json, const std::string& source = "");

 private:
  static ShardResult FromJsonUntagged(std::string_view json,
                                      const std::string& source);
};

// Executes one shard on `pool` (nullptr = the process-wide pool) through the
// same RunSweepCells path SweepRunner::Run uses, so the returned
// accumulators are bit-identical to the same cells' accumulators in a
// single-process run by construction. Throws std::invalid_argument on
// invalid options or cells, with the same messages SweepRunner::Run emits.
ShardResult RunShard(const ShardSpec& shard, WorkerPool* pool = nullptr);

// Folds worker outputs back into a SweepResult. Order-invariant and
// partition-invariant: each cell arrives exactly once (whole, with its
// trial-order fold already done), is slotted by grid index, and finalized
// identically to the single-process path — so any grouping of cells into
// shards and any Add order produce the same bytes. Inconsistent headers,
// duplicate cells, and premature Finish are errors.
class ShardMerger {
 public:
  // Validates against the first-added result's header: estimand,
  // confidence, axes, total_cells, and sweep identity. Version-2 results
  // must agree on sweep_id (shard_count is provenance only — a supervisor
  // that re-partitions failed shards legitimately produces documents with
  // differing counts); when either side is a version-1 document with no
  // sweep_id, the legacy equal-shard-count rule applies instead. Throws
  // std::invalid_argument on any mismatch or duplicated cell index, naming
  // the offending shard index and source file in every message. `source`
  // (e.g. the file the result was read from) may be empty.
  // Fragments (trial-range results) are accepted alongside whole cells: a
  // cell assembles the moment its fragments tile [0, cell_trials)
  // contiguously from zero with block-aligned interior boundaries, folding
  // the shipped blocks in trial order — so the assembled accumulator is
  // bit-identical to the whole-cell run. Overlapping or inconsistent
  // fragments, and a fragment for a cell that already arrived whole (or
  // vice versa), are errors.
  void Add(ShardResult result, const std::string& source = "");
  // Parses then Adds; convenience for driver loops reading worker files.
  // `source` names the document in both parse and merge errors.
  void AddJson(std::string_view json, const std::string& source = "");

  size_t cells_received() const { return received_; }
  bool complete() const;
  // Grid indices not yet covered by any added shard (empty when complete,
  // or before the first Add).
  std::vector<size_t> MissingCells() const;

  // Finalizes into the single-process-identical SweepResult; throws
  // std::invalid_argument naming the missing cells if incomplete, or if
  // nothing was added.
  SweepResult Finish() const;

  // Finalizes whatever arrived — for drivers running with explicit
  // partial-results consent (--partial-ok) after retries are exhausted.
  // Cells keep their true grid indices, so the gaps (MissingCells()) stay
  // visible; throws std::invalid_argument if nothing was added. Each
  // present cell finalizes to exactly the bytes it would have in the
  // complete merge.
  SweepResult FinishPartial() const;

  // Moves the merged raw executions out, in grid order — the exact Welford
  // state a result cache needs to seed adaptive continuation
  // (ResumeSweepCells) later. Only valid on a complete merge
  // (std::invalid_argument otherwise); the merger is spent afterwards.
  std::vector<SweepCellExecution> TakeExecutions();

 private:
  // Validates one incoming fragment, stores it, and assembles the cell once
  // its tiling is complete.
  void AddFragment(ShardCellFragment fragment, const std::string& who);

  bool have_header_ = false;
  ShardResult header_;    // cells unused; header fields of the first Add
  std::string first_source_;
  std::vector<std::optional<SweepCellExecution>> cells_;
  // Fragments awaiting a complete tiling, per grid index.
  std::vector<std::vector<ShardCellFragment>> pending_fragments_;
  // Which shard delivered each received cell ("shard 3 (k3.result.json)"),
  // so duplicate-cell errors can name both deliverers.
  std::vector<std::string> cell_sources_;
  size_t received_ = 0;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_SHARD_SHARD_H_
