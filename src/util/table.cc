#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

namespace longstore {
namespace {

std::string CsvEscape(const std::string& cell) {
  const bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::FmtPercent(double p, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, p * 100.0);
  return buf;
}

std::string Table::FmtYears(double years, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f y", precision, years);
  return buf;
}

std::string Table::FmtSci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += ' ';
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string rule = "+";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += rule;
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

std::string Heading(const std::string& experiment_id, const std::string& title) {
  std::string bar(78, '=');
  return bar + "\n" + experiment_id + ": " + title + "\n" + bar + "\n";
}

}  // namespace longstore
