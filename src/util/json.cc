#include "src/util/json.h"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <system_error>

namespace longstore::json {

// --- canonical emission ----------------------------------------------------

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double v) {
  if (std::isinf(v)) {
    out += v > 0 ? "\"inf\"" : "\"-inf\"";
    return;
  }
  if (std::isnan(v)) {
    out += "\"nan\"";
    return;
  }
  // std::to_chars, not snprintf: %g obeys LC_NUMERIC, so an embedder that
  // calls setlocale(LC_ALL, "") under a comma-decimal locale would silently
  // change every canonical byte — and with it CanonicalHash, sweep_id, and
  // the envelope checksums. to_chars is locale-independent and its
  // general/17 output is byte-identical to C-locale %.17g.
  char buf[40];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 17);
  out.append(buf, res.ptr);
}

void AppendInt64(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void AppendUint64Hex(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", v);
  out += buf;
}

// --- checksummed documents -------------------------------------------------

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string WrapChecksummedBody(const std::string& version_key, int version,
                                std::string_view body) {
  std::string out;
  out.reserve(body.size() + 80);
  out += "{\"";
  out += version_key;
  out += "\":";
  AppendInt64(out, version);
  out += ",\"body_bytes\":";
  AppendInt64(out, static_cast<int64_t>(body.size()));
  out += ",\"body_fnv1a\":";
  AppendUint64Hex(out, Fnv1a64(body));
  out += ",\"body\":";
  out += body;
  out += '}';
  return out;
}

namespace {

std::string HexString(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
  return buf;
}

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

ChecksummedDocument OpenChecksummedDocument(std::string_view text,
                                            const std::string& version_key,
                                            const std::string& context,
                                            const std::string& source) {
  const auto fail = [&](const std::string& what) {
    throw IntegrityError(context + ": " +
                         (source.empty() ? what : "[" + source + "] " + what));
  };
  // Trim surrounding whitespace so a trailing newline (every worker writes
  // one) never shifts the byte accounting.
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && IsJsonWhitespace(text[begin])) {
    ++begin;
  }
  while (end > begin && IsJsonWhitespace(text[end - 1])) {
    --end;
  }
  const std::string_view doc = text.substr(begin, end - begin);

  ChecksummedDocument out;
  out.body = doc;
  const std::string head = "{\"" + version_key + "\":";
  if (doc.substr(0, head.size()) != head) {
    // Not even a versioned document; the caller's JSON parse reports it.
    return out;
  }
  size_t pos = head.size();
  const size_t digits_begin = pos;
  while (pos < doc.size() && doc[pos] >= '0' && doc[pos] <= '9') {
    ++pos;
  }
  if (pos == digits_begin || pos - digits_begin > 9) {
    return out;  // "1.5", "-1", ...: let the schema layer reject it precisely
  }
  int version = 0;
  for (size_t i = digits_begin; i < pos; ++i) {
    version = version * 10 + (doc[i] - '0');
  }
  constexpr std::string_view kBytesKey = ",\"body_bytes\":";
  if (doc.substr(pos, kBytesKey.size()) != kBytesKey) {
    // A legacy flat document: the version key lives inside the body.
    out.version = version;
    return out;
  }
  out.version = version;
  out.checksummed = true;
  pos += kBytesKey.size();

  const size_t bytes_begin = pos;
  uint64_t body_bytes = 0;
  while (pos < doc.size() && doc[pos] >= '0' && doc[pos] <= '9') {
    body_bytes = body_bytes * 10 + static_cast<uint64_t>(doc[pos] - '0');
    ++pos;
  }
  if (pos == bytes_begin || pos - bytes_begin > 15) {
    fail("malformed body_bytes in the checksum envelope");
  }
  constexpr std::string_view kFnvKey = ",\"body_fnv1a\":\"0x";
  if (doc.substr(pos, kFnvKey.size()) != kFnvKey) {
    fail("checksum envelope is missing body_fnv1a after body_bytes");
  }
  pos += kFnvKey.size();
  const size_t hex_begin = pos;
  uint64_t declared = 0;
  while (pos < doc.size() &&
         ((doc[pos] >= '0' && doc[pos] <= '9') || (doc[pos] >= 'a' && doc[pos] <= 'f'))) {
    declared = (declared << 4) |
               static_cast<uint64_t>(doc[pos] <= '9' ? doc[pos] - '0'
                                                     : doc[pos] - 'a' + 10);
    ++pos;
  }
  if (pos == hex_begin || pos - hex_begin > 16) {
    fail("malformed body_fnv1a in the checksum envelope (lowercase hex only)");
  }
  constexpr std::string_view kBodyKey = "\",\"body\":";
  if (doc.substr(pos, kBodyKey.size()) != kBodyKey) {
    fail("checksum envelope is missing the body after body_fnv1a");
  }
  pos += kBodyKey.size();
  if (doc.empty() || doc.back() != '}' || pos >= doc.size()) {
    fail("checksum envelope is not closed by '}'");
  }
  const std::string_view body = doc.substr(pos, doc.size() - 1 - pos);
  if (body.size() != body_bytes) {
    fail("body_bytes says " + std::to_string(body_bytes) +
         " bytes but the body holds " + std::to_string(body.size()) +
         " — the document was truncated or padded in transport");
  }
  const uint64_t actual = Fnv1a64(body);
  if (actual != declared) {
    fail("body_fnv1a mismatch: the envelope declares " + HexString(declared) +
         " but the body hashes to " + HexString(actual) +
         " — the document was corrupted in transport");
  }
  out.body = body;
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, const std::string& context)
      : text_(text), context_(context) {}

  Value Parse() {
    Value value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      ParseFail("trailing characters after the top-level value");
    }
    return value;
  }

 private:
  [[noreturn]] void ParseFail(const std::string& what) const {
    throw std::invalid_argument(context_ + ": " + what + " (at byte " +
                                std::to_string(pos_) + ")");
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      ParseFail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      ParseFail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipWhitespace();
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value ParseValue() {
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        Value value;
        value.kind = Value::Kind::kString;
        value.string = ParseString();
        return value;
      }
      default:
        break;
    }
    Value value;
    if (ConsumeWord("true")) {
      value.kind = Value::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.kind = Value::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (ConsumeWord("null")) {
      value.kind = Value::Kind::kNull;
      return value;
    }
    return ParseNumber();
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        ParseFail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        ParseFail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            ParseFail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              ParseFail("invalid \\u escape");
            }
          }
          // The canonical emitters only escape control characters; decode
          // the BMP code point as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          ParseFail("unknown escape");
      }
    }
  }

  Value ParseNumber() {
    SkipWhitespace();
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      ParseFail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    // std::from_chars, not strtod: strtod obeys LC_NUMERIC, so under a
    // comma-decimal locale it would stop at the '.' of a canonical number
    // and reject (or worse, reinterpret) documents this library itself
    // emitted. from_chars always parses the C-locale spelling. It does not
    // accept a leading '+' (strtod did; the canonical emitters never write
    // one), so consume it explicitly to keep accepting that spelling.
    const char* first = token.c_str();
    const char* last = first + token.size();
    if (first != last && *first == '+') {
      ++first;
    }
    double value = 0.0;
    const auto res = std::from_chars(first, last, value);
    if (res.ec == std::errc::result_out_of_range) {
      ParseFail("number '" + token + "' is out of double range");
    }
    if (res.ec != std::errc() || res.ptr != last) {
      ParseFail("malformed number '" + token + "'");
    }
    Value out;
    out.kind = Value::Kind::kNumber;
    out.number = value;
    return out;
  }

  Value ParseArray() {
    Expect('[');
    Value out;
    out.kind = Value::Kind::kArray;
    if (Consume(']')) {
      return out;
    }
    while (true) {
      out.array.push_back(ParseValue());
      if (Consume(']')) {
        return out;
      }
      Expect(',');
    }
  }

  Value ParseObject() {
    Expect('{');
    Value out;
    out.kind = Value::Kind::kObject;
    if (Consume('}')) {
      return out;
    }
    while (true) {
      const std::string key = ParseString();
      if (out.Find(key) != nullptr) {
        ParseFail("duplicate key \"" + key + "\"");
      }
      Expect(':');
      out.object.emplace_back(key, ParseValue());
      if (Consume('}')) {
        return out;
      }
      Expect(',');
    }
  }

  std::string_view text_;
  const std::string& context_;
  size_t pos_ = 0;
};

}  // namespace

Value Parse(std::string_view text, const std::string& context) {
  return Parser(text, context).Parse();
}

void Fail(const std::string& context, const std::string& what) {
  throw std::invalid_argument(context + ": " + what);
}

// --- schema mapping --------------------------------------------------------

int CheckedInt(double value, const std::string& what, const std::string& context) {
  constexpr double kIntMin = static_cast<double>(std::numeric_limits<int>::min());
  constexpr double kIntMax = static_cast<double>(std::numeric_limits<int>::max());
  if (!(value >= kIntMin && value <= kIntMax)) {
    Fail(context, what + " is out of integer range");
  }
  const int as_int = static_cast<int>(value);
  if (static_cast<double>(as_int) != value) {
    Fail(context, what + " must be an integer");
  }
  return as_int;
}

int64_t CheckedInt64(double value, const std::string& what, const std::string& context) {
  // Doubles hold integers exactly only up to 2^53; anything larger has
  // already been rounded by the emitter or the parser, so reject it.
  constexpr double kExactMax = 9007199254740992.0;  // 2^53
  if (!(value >= -kExactMax && value <= kExactMax)) {
    Fail(context, what + " is out of exactly-representable integer range");
  }
  const int64_t as_int = static_cast<int64_t>(value);
  if (static_cast<double>(as_int) != value) {
    Fail(context, what + " must be an integer");
  }
  return as_int;
}

uint64_t ParseUint64Hex(const std::string& text, const std::string& what,
                        const std::string& context) {
  if (text.size() < 3 || text.size() > 18 || text[0] != '0' || text[1] != 'x') {
    Fail(context, what + " must be a \"0x...\" hex string");
  }
  uint64_t value = 0;
  for (size_t i = 2; i < text.size(); ++i) {
    const char h = text[i];
    value <<= 4;
    if (h >= '0' && h <= '9') {
      value |= static_cast<uint64_t>(h - '0');
    } else if (h >= 'a' && h <= 'f') {
      value |= static_cast<uint64_t>(h - 'a' + 10);
    } else {
      Fail(context, what + " has a non-hex digit (lowercase hex only)");
    }
  }
  return value;
}

ObjectReader::ObjectReader(const Value& value, std::string where, std::string context)
    : value_(value), where_(std::move(where)), context_(std::move(context)) {
  if (value.kind != Value::Kind::kObject) {
    Fail(context_, where_ + " must be an object");
  }
}

const Value& ObjectReader::Get(const std::string& key, Value::Kind kind) {
  const Value* found = value_.Find(key);
  if (found == nullptr) {
    Fail(context_, where_ + " is missing key \"" + key + "\"");
  }
  consumed_.push_back(key);
  if (found->kind != kind &&
      !(kind == Value::Kind::kNumber && found->kind == Value::Kind::kString)) {
    Fail(context_, where_ + " key \"" + key + "\" has the wrong type");
  }
  return *found;
}

double ObjectReader::GetNumber(const std::string& key) {
  const Value& v = Get(key, Value::Kind::kNumber);
  if (v.kind == Value::Kind::kString) {
    // "inf" / "-inf" / "nan": the canonical spellings for non-finite
    // doubles (JSON has no literal for them).
    if (v.string == "inf") {
      return std::numeric_limits<double>::infinity();
    }
    if (v.string == "-inf") {
      return -std::numeric_limits<double>::infinity();
    }
    if (v.string == "nan") {
      return std::numeric_limits<double>::quiet_NaN();
    }
    Fail(context_, where_ + " key \"" + key + "\" has a non-numeric string value");
  }
  return v.number;
}

int ObjectReader::GetInt(const std::string& key) {
  return CheckedInt(GetNumber(key), "key \"" + key + "\"", context_);
}

int64_t ObjectReader::GetInt64(const std::string& key) {
  return CheckedInt64(GetNumber(key), "key \"" + key + "\"", context_);
}

uint64_t ObjectReader::GetUint64Hex(const std::string& key) {
  return ParseUint64Hex(Get(key, Value::Kind::kString).string, "key \"" + key + "\"",
                        context_);
}

std::string ObjectReader::GetString(const std::string& key) {
  return Get(key, Value::Kind::kString).string;
}

bool ObjectReader::GetBool(const std::string& key) {
  return Get(key, Value::Kind::kBool).boolean;
}

const std::vector<Value>& ObjectReader::GetArray(const std::string& key) {
  return Get(key, Value::Kind::kArray).array;
}

const Value& ObjectReader::GetObject(const std::string& key) {
  return Get(key, Value::Kind::kObject);
}

void ObjectReader::Finish() {
  for (const auto& [key, unused] : value_.object) {
    bool known = false;
    for (const std::string& c : consumed_) {
      if (c == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      Fail(context_, where_ + " has unknown key \"" + key + "\"");
    }
  }
}

}  // namespace longstore::json
