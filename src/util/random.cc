#include "src/util/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace longstore {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Philox round constants (Salmon et al., "Parallel random numbers: as easy
// as 1, 2, 3"): a multiplier with good avalanche under 128-bit widening
// multiplication, and the golden-ratio Weyl increment for the key schedule.
constexpr uint64_t kPhiloxM = 0xd2b74407b1ce6e93ULL;
constexpr uint64_t kPhiloxW = 0x9e3779b97f4a7c15ULL;

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t DeriveSeed(uint64_t seed, uint64_t index) {
  // Two SplitMix64 passes over a mixed (seed, index) pair. The golden-ratio
  // increment decorrelates consecutive indices.
  uint64_t state = seed ^ (index * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  (void)SplitMix64Next(state);
  return SplitMix64Next(state);
}

uint64_t CounterMix(uint64_t key, uint64_t stream, uint64_t counter) {
  // Philox2x64-10: ten rounds of a 128-bit-product Feistel step over the
  // (stream, counter) pair, with a Weyl key schedule. Frozen under
  // SeedMode::kCounterV1 — do not change in place; add a new version.
  uint64_t hi = stream;
  uint64_t lo = counter;
  uint64_t k = key;
  for (int round = 0; round < 10; ++round) {
    const __uint128_t product = static_cast<__uint128_t>(kPhiloxM) * lo;
    const uint64_t new_lo = static_cast<uint64_t>(product >> 64) ^ k ^ hi;
    hi = static_cast<uint64_t>(product);
    lo = new_lo;
    k += kPhiloxW;
  }
  return lo ^ hi;
}

Rng::Rng(uint64_t seed) { Reseed(seed); }

void Rng::Reseed(uint64_t seed) {
  mode_ = Mode::kXoshiro;
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64Next(sm);
  }
  // xoshiro must not be seeded with all-zero state; SplitMix64 cannot produce
  // four zero outputs in a row, but guard anyway for safety.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x1ULL;
  }
}

void Rng::ReseedCounter(uint64_t key, uint64_t stream) {
  mode_ = Mode::kCounter;
  key_ = key;
  stream_ = stream;
  counter_ = 0;
}

uint64_t Rng::Next() {
  if (mode_ == Mode::kCounter) {
    return CounterMix(key_, stream_, counter_++);
  }
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

double Rng::NextDoubleOpen() {
  // (value + 1) / 2^53 lies in (0, 1]; log() of the result is always finite.
  return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < ClampProbability(p); }

Duration Rng::NextExponential(Duration mean) {
  if (mean.is_infinite()) {
    return Duration::Infinite();
  }
  assert(mean.hours() >= 0.0 && "NextExponential: mean must be non-negative");
  double mean_hours = mean.hours();
  if (!(mean_hours >= 0.0)) {  // negative or NaN
    mean_hours = 0.0;
  }
  return Duration::Hours(-std::log(NextDoubleOpen()) * mean_hours);
}

Duration Rng::NextExponential(Rate rate) { return NextExponential(rate.MeanInterval()); }

Duration Rng::NextUniform(Duration lo, Duration hi) {
  const double width = (hi - lo).hours();
  const double u = NextDouble();  // consumed even for degenerate ranges
  if (!(width > 0.0) || std::isinf(width)) {
    return lo;
  }
  return lo + Duration::Hours(width * u);
}

Duration Rng::NextWeibull(double shape, Duration scale) {
  assert(shape > 0.0 && std::isfinite(shape) &&
         "NextWeibull: shape must be finite and positive");
  if (!(shape > 0.0) || !std::isfinite(shape)) {
    shape = 1.0;
  }
  const double u = NextDoubleOpen();
  return Duration::Hours(scale.hours() * std::pow(-std::log(u), 1.0 / shape));
}

double Rng::NextGaussian() {
  const double u1 = NextDoubleOpen();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace longstore
