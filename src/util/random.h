// Deterministic pseudo-random number generation for the simulator.
//
// We implement our own generator (xoshiro256**) and samplers rather than using
// <random>'s distributions because the standard leaves distribution algorithms
// implementation-defined: identical seeds would give different fault histories
// on different standard libraries, breaking reproducibility of EXPERIMENTS.md.
// SplitMix64 is used to expand user seeds and to derive independent per-trial
// streams, which makes Monte Carlo results independent of thread scheduling.

#ifndef LONGSTORE_SRC_UTIL_RANDOM_H_
#define LONGSTORE_SRC_UTIL_RANDOM_H_

#include <array>
#include <cstdint>

#include "src/util/units.h"

namespace longstore {

// SplitMix64 step: advances `state` and returns the next 64-bit output.
// Used for seed expansion and derivation, not as the main generator.
uint64_t SplitMix64Next(uint64_t& state);

// Derives a well-mixed 64-bit seed for substream `index` of a root `seed`.
// Distinct (seed, index) pairs yield (statistically) independent streams.
uint64_t DeriveSeed(uint64_t seed, uint64_t index);

// xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  // Re-initializes the generator exactly as construction from `seed` would:
  // a reseeded Rng produces the same stream as a fresh one. Lets the Monte
  // Carlo harness reuse one generator across trials.
  void Reseed(uint64_t seed);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform double in (0, 1]: never returns 0, so it is safe to take its log.
  double NextDoubleOpen();

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection sampling
  // (Lemire) so results are exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  // True with probability p (p clamped to [0,1]).
  bool NextBernoulli(double p);

  // Exponentially distributed duration with the given mean. A zero rate /
  // infinite mean yields Duration::Infinite() ("the event never happens").
  Duration NextExponential(Duration mean);
  Duration NextExponential(Rate rate);

  // Uniform duration in [lo, hi).
  Duration NextUniform(Duration lo, Duration hi);

  // Weibull-distributed duration with the given shape k and scale lambda.
  // k < 1 models infant mortality, k > 1 wear-out: together the "bathtub"
  // lifetime curve the paper cites for same-batch hardware (§6.5).
  Duration NextWeibull(double shape, Duration scale);

  // Standard normal via Box-Muller (no cached second value: keeps the
  // generator's state trajectory independent of call history).
  double NextGaussian();

 private:
  std::array<uint64_t, 4> s_;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_UTIL_RANDOM_H_
