// Deterministic pseudo-random number generation for the simulator.
//
// We implement our own generators (xoshiro256** and a Philox-style
// counter-based mixer) and samplers rather than using <random>'s distributions
// because the standard leaves distribution algorithms implementation-defined:
// identical seeds would give different fault histories on different standard
// libraries, breaking reproducibility of EXPERIMENTS.md.
// SplitMix64 is used to expand user seeds and to derive independent per-trial
// streams, which makes Monte Carlo results independent of thread scheduling.
//
// Stream versioning contract: the bit-exact output of every generator and
// sampler in this header is frozen. Changing any stream requires a new
// SeedMode (see src/sweep/sweep.h) rather than an in-place edit, so that
// previously published figures stay reproducible. See src/util/README.md.

#ifndef LONGSTORE_SRC_UTIL_RANDOM_H_
#define LONGSTORE_SRC_UTIL_RANDOM_H_

#include <array>
#include <cstdint>

#include "src/util/units.h"

namespace longstore {

// SplitMix64 step: advances `state` and returns the next 64-bit output.
// Used for seed expansion and derivation, not as the main generator.
uint64_t SplitMix64Next(uint64_t& state);

// Derives a well-mixed 64-bit seed for substream `index` of a root `seed`.
// Distinct (seed, index) pairs yield (statistically) independent streams.
uint64_t DeriveSeed(uint64_t seed, uint64_t index);

// Counter-based generator (Philox2x64-10 style): a pure function of
// (key, stream, counter) with no hidden state, so any draw of any trial is
// addressable in O(1). `key` identifies the experiment (e.g. a scenario
// content hash mixed with the root seed), `stream` the trial, and `counter`
// the draw index within the trial. This is what makes trial-range sharding
// and SoA batch kernels deterministic: a worker can reproduce draw #k of
// trial #t without replaying draws 0..k-1.
//
// The output stream is frozen under SeedMode::kCounterV1; see
// src/util/README.md for the versioning contract.
uint64_t CounterMix(uint64_t key, uint64_t stream, uint64_t counter);

// Pseudo-random generator behind all samplers. Runs in one of two modes:
//  - xoshiro256** 1.0 (Blackman & Vigna; fast, 256-bit state, passes
//    BigCrush) after Reseed() — the historical default, bit-compatible with
//    every stream this repo has ever published.
//  - counter mode after ReseedCounter() — each Next() returns
//    CounterMix(key, stream, n) for n = 0, 1, 2, ... so the stream position
//    is an explicit, seekable integer.
// Satisfies std::uniform_random_bit_generator in both modes.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  // Re-initializes the generator exactly as construction from `seed` would:
  // a reseeded Rng produces the same stream as a fresh one. Lets the Monte
  // Carlo harness reuse one generator across trials. Always selects xoshiro
  // mode, even if the Rng was previously in counter mode.
  void Reseed(uint64_t seed);

  // Switches to counter mode: subsequent Next() calls return
  // CounterMix(key, stream, 0), CounterMix(key, stream, 1), ...
  // Reseeding with the same (key, stream) reproduces the same stream.
  void ReseedCounter(uint64_t key, uint64_t stream);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform double in (0, 1]: never returns 0, so it is safe to take its log.
  double NextDoubleOpen();

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection sampling
  // (Lemire) so results are exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  // True with probability p (p clamped to [0,1]).
  bool NextBernoulli(double p);

  // Exponentially distributed duration with the given mean. A zero rate /
  // infinite mean yields Duration::Infinite() ("the event never happens")
  // without consuming a draw (historical behavior, frozen). A negative or
  // NaN mean is a caller bug: debug builds assert; release builds clamp to
  // a zero mean (the event fires immediately) so the result is at least a
  // defined, finite duration — the draw is still consumed in that case.
  Duration NextExponential(Duration mean);
  Duration NextExponential(Rate rate);

  // Uniform duration in [lo, hi). Degenerate ranges are defined rather than
  // garbage: if hi <= lo, or the width (hi - lo) is infinite or NaN, the
  // result is exactly `lo` (previously an infinite hi could yield NaN via
  // inf * 0, and hi < lo was silently accepted). One uniform is consumed
  // either way, so the stream position never depends on the arguments.
  Duration NextUniform(Duration lo, Duration hi);

  // Weibull-distributed duration with the given shape k and scale lambda.
  // k < 1 models infant mortality, k > 1 wear-out: together the "bathtub"
  // lifetime curve the paper cites for same-batch hardware (§6.5).
  // A non-finite or non-positive shape is a caller bug: debug builds assert;
  // release builds clamp the shape to 1 (exponential) so the result is a
  // defined, finite duration. One uniform is consumed either way.
  Duration NextWeibull(double shape, Duration scale);

  // Standard normal via Box-Muller (no cached second value: keeps the
  // generator's state trajectory independent of call history).
  double NextGaussian();

 private:
  enum class Mode : uint8_t { kXoshiro, kCounter };

  std::array<uint64_t, 4> s_;
  Mode mode_ = Mode::kXoshiro;
  uint64_t key_ = 0;
  uint64_t stream_ = 0;
  uint64_t counter_ = 0;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_UTIL_RANDOM_H_
