// Console table and CSV rendering for the bench harnesses.
//
// Every bench binary prints its experiment as an aligned text table (the
// "paper row vs measured row" format EXPERIMENTS.md records) and can emit the
// same data as CSV for plotting.

#ifndef LONGSTORE_SRC_UTIL_TABLE_H_
#define LONGSTORE_SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace longstore {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; it may have fewer cells than headers (padded with "").
  void AddRow(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string Fmt(double v, int precision = 4);
  static std::string FmtPercent(double p, int precision = 1);
  static std::string FmtYears(double years, int precision = 1);
  static std::string FmtSci(double v, int precision = 3);

  // Aligned, boxed text rendering.
  std::string Render() const;

  // RFC-4180-style CSV (quotes cells containing commas/quotes/newlines).
  std::string ToCsv() const;

  size_t row_count() const { return rows_.size(); }
  size_t column_count() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section heading used by the bench binaries: the experiment id and
// the paper reference it regenerates.
std::string Heading(const std::string& experiment_id, const std::string& title);

}  // namespace longstore

#endif  // LONGSTORE_SRC_UTIL_TABLE_H_
