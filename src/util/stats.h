// Summary statistics and interval estimates for Monte Carlo output.

#ifndef LONGSTORE_SRC_UTIL_STATS_H_
#define LONGSTORE_SRC_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace longstore {

// Numerically stable running mean/variance (Welford). Merges support the
// multi-threaded Monte Carlo executor: per-thread accumulators combine into
// one without keeping raw samples.
class RunningStats {
 public:
  // The accumulator's exact internal state, for serializing partial
  // aggregates across processes (the sweep shard protocol). A FromRaw of an
  // unmodified raw() is bit-identical to the original — further Add/Merge
  // calls continue exactly where the source accumulator left off.
  struct Raw {
    int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void Add(double x);
  void Merge(const RunningStats& other);

  Raw raw() const { return Raw{count_, mean_, m2_, min_, max_}; }
  static RunningStats FromRaw(const Raw& raw);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  // Standard error of the mean.
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// A two-sided confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double x) const { return lo <= x && x <= hi; }
  double width() const { return hi - lo; }
};

// Normal-approximation CI for a mean at the given confidence (e.g. 0.95).
Interval MeanConfidenceInterval(const RunningStats& stats, double confidence);

// Wilson score interval for a binomial proportion: `successes` out of
// `trials`. Well-behaved for proportions near 0 or 1, which is exactly the
// regime of small loss probabilities (e.g. the paper's 0.8% in 50 years).
Interval WilsonInterval(int64_t successes, int64_t trials, double confidence);

// Two-sided standard-normal quantile for the given confidence, e.g.
// confidence = 0.95 -> 1.959964.
double NormalQuantileTwoSided(double confidence);

// Inverse standard normal CDF (Acklam's rational approximation, |eps| < 1e-9).
double InverseNormalCdf(double p);

// Empirical quantile (linear interpolation) of a sample; `q` in [0, 1].
// Sorts a copy; intended for end-of-run reporting, not hot paths.
double Quantile(std::vector<double> samples, double q);

// Kahan-compensated sum, used where many small probabilities accumulate
// (CTMC uniformization tails).
double CompensatedSum(const std::vector<double>& values);

}  // namespace longstore

#endif  // LONGSTORE_SRC_UTIL_STATS_H_
