#include "src/util/linalg.h"

#include <cmath>
#include <stdexcept>

namespace longstore {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    m.At(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t.At(c, r) = At(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix multiply: dimension mismatch");
  }
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) {
        continue;
      }
      for (size_t c = 0; c < other.cols_; ++c) {
        out.At(r, c) += a * other.At(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  if (cols_ != v.size()) {
    throw std::invalid_argument("Matrix-vector multiply: dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      acc += At(r, c) * v[c];
    }
    out[r] = acc;
  }
  return out;
}

double Matrix::InfNorm() const {
  double best = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    double row = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      row += std::fabs(At(r, c));
    }
    best = std::max(best, row);
  }
  return best;
}

std::optional<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("SolveLinearSystem: dimension mismatch");
  }
  // Scaled partial pivoting keeps the solve stable when rates span many
  // orders of magnitude (per-hour fault rates ~1e-7 vs repair rates ~3).
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      return std::nullopt;
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(a.At(pivot, c), a.At(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.At(r, col) * inv;
      if (factor == 0.0) {
        continue;
      }
      a.At(r, col) = 0.0;
      for (size_t c = col + 1; c < n; ++c) {
        a.At(r, c) -= factor * a.At(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) {
      acc -= a.At(ri, c) * x[c];
    }
    x[ri] = acc / a.At(ri, ri);
    if (!std::isfinite(x[ri])) {
      return std::nullopt;
    }
  }
  return x;
}

std::optional<std::vector<double>> SolveLinearSystemTransposed(const Matrix& a,
                                                               std::vector<double> b) {
  return SolveLinearSystem(a.Transposed(), std::move(b));
}

std::optional<std::vector<double>> SolveMarkovAbsorbing(Matrix rates,
                                                        std::vector<double> absorption,
                                                        std::vector<double> b) {
  const size_t n = rates.rows();
  if (rates.cols() != n || absorption.size() != n || b.size() != n) {
    throw std::invalid_argument("SolveMarkovAbsorbing: dimension mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    rates.At(i, i) = 0.0;  // diagonal is derived, never read
  }
  if (n == 0) {
    return std::vector<double>{};
  }

  // Forward elimination of states n-1 .. 1. After eliminating state k, the
  // remaining system over {0..k-1} is again an absorbing-Markov system with
  // updated (still nonnegative) rates, absorption rates, and rhs. Diagonals
  // are recomputed as row sums, which is the GTH trick that avoids the
  // catastrophic cancellation of ordinary Gaussian elimination.
  std::vector<double> pivot(n, 0.0);
  for (size_t k = n; k-- > 0;) {
    double d = absorption[k];
    for (size_t j = 0; j < k; ++j) {
      d += rates.At(k, j);
    }
    if (!(d > 0.0) || !std::isfinite(d)) {
      return std::nullopt;  // trap state: absorption unreachable
    }
    pivot[k] = d;
    if (k == 0) {
      break;
    }
    for (size_t i = 0; i < k; ++i) {
      const double r_ik = rates.At(i, k);
      if (r_ik == 0.0) {
        continue;
      }
      const double factor = r_ik / d;
      for (size_t j = 0; j < k; ++j) {
        if (j != i) {
          rates.At(i, j) += factor * rates.At(k, j);
        }
      }
      absorption[i] += factor * absorption[k];
      b[i] += factor * b[k];
    }
  }

  // Back substitution, also subtraction-free.
  std::vector<double> x(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    double acc = b[k];
    for (size_t j = 0; j < k; ++j) {
      acc += rates.At(k, j) * x[j];
    }
    x[k] = acc / pivot[k];
    if (!std::isfinite(x[k])) {
      return std::nullopt;
    }
  }
  return x;
}

}  // namespace longstore
