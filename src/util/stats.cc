#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace longstore {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

RunningStats RunningStats::FromRaw(const Raw& raw) {
  RunningStats stats;
  stats.count_ = raw.count;
  stats.mean_ = raw.mean;
  stats.m2_ = raw.m2;
  stats.min_ = raw.min;
  stats.max_ = raw.max;
  return stats;
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::std_error() const {
  if (count_ < 1) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

Interval MeanConfidenceInterval(const RunningStats& stats, double confidence) {
  const double z = NormalQuantileTwoSided(confidence);
  const double half = z * stats.std_error();
  return Interval{stats.mean() - half, stats.mean() + half};
}

Interval WilsonInterval(int64_t successes, int64_t trials, double confidence) {
  if (trials <= 0) {
    return Interval{0.0, 1.0};
  }
  const double z = NormalQuantileTwoSided(confidence);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return Interval{std::max(0.0, center - half), std::min(1.0, center + half)};
}

double NormalQuantileTwoSided(double confidence) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("confidence must lie in (0, 1)");
  }
  return InverseNormalCdf(0.5 + confidence / 2.0);
}

double InverseNormalCdf(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("p must lie in (0, 1)");
  }
  // Acklam's algorithm: rational approximations on a central region and two
  // tails, one Halley refinement step for ~1e-15 relative accuracy.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method against the true CDF.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double Quantile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double CompensatedSum(const std::vector<double>& values) {
  double sum = 0.0;
  double comp = 0.0;
  for (double v : values) {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace longstore
