// Small dense linear algebra, sized for CTMC absorption solves.
//
// The replication chains in src/model produce systems with at most a few
// hundred states (state count grows cubically in replica count r, and r <= 10
// in every experiment), so a dense LU with partial pivoting is both simpler
// and faster than any sparse machinery here.

#ifndef LONGSTORE_SRC_UTIL_LINALG_H_
#define LONGSTORE_SRC_UTIL_LINALG_H_

#include <cstddef>
#include <optional>
#include <vector>

namespace longstore {

// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  Matrix Transposed() const;
  Matrix operator*(const Matrix& other) const;
  std::vector<double> operator*(const std::vector<double>& v) const;

  // Maximum absolute row sum (infinity norm).
  double InfNorm() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Solves A x = b by LU decomposition with partial pivoting.
// Returns std::nullopt if A is (numerically) singular.
std::optional<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b);

// Solves the absorbing-Markov system (D - R) x = b, where R holds the
// nonnegative transition rates among the n transient states (diagonal
// ignored), `absorption[i]` >= 0 is state i's total rate into absorbing
// states, and D is the diagonal of total outflows (row sum of R plus
// absorption). Uses GTH-style (Grassmann-Taksar-Heyman) elimination: every
// operation is an add/multiply/divide of nonnegative quantities, so the
// result keeps full relative accuracy even when expected absorption times
// exceed the repair timescale by 25+ orders of magnitude — exactly the
// regime of highly-replicated storage (eq 12 with large r).
// Requirements: b >= 0 elementwise; every state must have positive total
// outflow and a path to absorption (no traps). Returns nullopt if a zero
// pivot (trap) is encountered.
std::optional<std::vector<double>> SolveMarkovAbsorbing(Matrix rates,
                                                        std::vector<double> absorption,
                                                        std::vector<double> b);

// Solves x A = b (row vector form), i.e. A^T x = b. Convenience for CTMC
// stationary/absorption-probability equations which are naturally row-form.
std::optional<std::vector<double>> SolveLinearSystemTransposed(const Matrix& a,
                                                               std::vector<double> b);

}  // namespace longstore

#endif  // LONGSTORE_SRC_UTIL_LINALG_H_
