#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace longstore {
namespace {

std::string RenderBuckets(int width, int count, int64_t total,
                          const std::vector<int64_t>& buckets,
                          double (*lo_fn)(const void*, int), double (*hi_fn)(const void*, int),
                          const void* self) {
  int64_t max_count = 1;
  for (int64_t c : buckets) {
    max_count = std::max(max_count, c);
  }
  std::string out;
  char line[160];
  for (int i = 0; i < count; ++i) {
    const int64_t c = buckets[static_cast<size_t>(i)];
    const int bar = static_cast<int>((c * width) / max_count);
    const double pct = total > 0 ? 100.0 * static_cast<double>(c) / static_cast<double>(total)
                                 : 0.0;
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %8lld %5.1f%% |",
                  lo_fn(self, i), hi_fn(self, i), static_cast<long long>(c), pct);
    out += line;
    out.append(static_cast<size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace

LinearHistogram::LinearHistogram(double lo, double hi, int bucket_count)
    : lo_(lo), hi_(hi), buckets_(static_cast<size_t>(bucket_count), 0) {
  if (bucket_count <= 0 || !(hi > lo)) {
    throw std::invalid_argument("LinearHistogram requires hi > lo and bucket_count > 0");
  }
  bucket_width_ = (hi - lo) / bucket_count;
}

void LinearHistogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((x - lo_) / bucket_width_);
  idx = std::min(idx, buckets_.size() - 1);  // guard boundary rounding
  ++buckets_[idx];
}

double LinearHistogram::bucket_lo(int i) const { return lo_ + bucket_width_ * i; }
double LinearHistogram::bucket_hi(int i) const { return lo_ + bucket_width_ * (i + 1); }

std::string LinearHistogram::Render(int width) const {
  return RenderBuckets(
      width, bucket_count(), total_, buckets_,
      [](const void* self, int i) {
        return static_cast<const LinearHistogram*>(self)->bucket_lo(i);
      },
      [](const void* self, int i) {
        return static_cast<const LinearHistogram*>(self)->bucket_hi(i);
      },
      this);
}

LogHistogram::LogHistogram(double lo, double hi, int buckets_per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || buckets_per_decade <= 0) {
    throw std::invalid_argument("LogHistogram requires 0 < lo < hi, buckets_per_decade > 0");
  }
  log_lo_ = std::log10(lo);
  log_hi_ = std::log10(hi);
  log_step_ = 1.0 / buckets_per_decade;
  const int n = static_cast<int>(std::ceil((log_hi_ - log_lo_) / log_step_));
  buckets_.assign(static_cast<size_t>(std::max(n, 1)), 0);
}

void LogHistogram::Add(double x) {
  ++total_;
  if (!(x > 0.0) || std::log10(x) < log_lo_) {
    ++underflow_;
    return;
  }
  const double lx = std::log10(x);
  if (lx >= log_hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((lx - log_lo_) / log_step_);
  idx = std::min(idx, buckets_.size() - 1);
  ++buckets_[idx];
}

double LogHistogram::bucket_lo(int i) const { return std::pow(10.0, log_lo_ + log_step_ * i); }
double LogHistogram::bucket_hi(int i) const {
  return std::pow(10.0, log_lo_ + log_step_ * (i + 1));
}

std::string LogHistogram::Render(int width) const {
  return RenderBuckets(
      width, bucket_count(), total_, buckets_,
      [](const void* self, int i) {
        return static_cast<const LogHistogram*>(self)->bucket_lo(i);
      },
      [](const void* self, int i) {
        return static_cast<const LogHistogram*>(self)->bucket_hi(i);
      },
      this);
}

}  // namespace longstore
