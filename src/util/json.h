// Minimal JSON infrastructure shared by every serialized protocol in the
// library: the Scenario canonical form (src/scenario/scenario_json.cc) and
// the sweep shard protocol (src/shard/).
//
// Emission side: append-style helpers that produce *canonical* JSON — no
// insignificant whitespace, round-trip-exact doubles (the C-locale %.17g
// form, emitted via std::to_chars so the bytes cannot vary with LC_NUMERIC;
// "inf"/"-inf"/"nan" as strings, since JSON has no literal for them).
// Canonical strings double as identity (FNV-1a hashes over them are stable
// across processes, platforms and locales), so emitters must never change
// byte output gratuitously. Parsing is equally locale-independent
// (std::from_chars): an embedder calling setlocale(LC_ALL, "") under a
// comma-decimal locale changes neither emitted bytes nor parsed values.
//
// Parsing side: a strict value-tree parser plus ObjectReader, a schema view
// that rejects duplicate, unknown and missing keys and type mismatches with
// a precise, context-prefixed error. Everything that ingests cross-process
// input goes through these, so malformed input always fails cleanly
// (std::invalid_argument) instead of reaching undefined behavior.

#ifndef LONGSTORE_SRC_UTIL_JSON_H_
#define LONGSTORE_SRC_UTIL_JSON_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace longstore::json {

// --- canonical emission ----------------------------------------------------

// Appends `s` as a quoted JSON string, escaping quotes, backslashes and
// control characters.
void AppendEscaped(std::string& out, const std::string& s);

// Appends a round-trip-exact double: shortest %.17g form re-parses to the
// same bits; infinities and NaN are emitted as the strings "inf" / "-inf" /
// "nan".
void AppendDouble(std::string& out, double v);

// Appends a 64-bit integer exactly (decimal digits, no double round trip).
void AppendInt64(std::string& out, int64_t v);

// Appends a 64-bit unsigned value as a hex string ("0x1b3...") — the only
// representation that survives JSON's double-typed numbers above 2^53
// losslessly. Used for seeds and hashes.
void AppendUint64Hex(std::string& out, uint64_t v);

// --- checksummed documents -------------------------------------------------
//
// End-to-end integrity for documents that cross a process or transport
// boundary: the canonical body is wrapped in an envelope carrying its exact
// byte length and FNV-1a hash,
//
//   {"<version_key>":V,"body_bytes":N,"body_fnv1a":"0x...","body":{...}}
//
// and the reader verifies both against the raw received bytes *before* any
// JSON parsing. A transport that corrupts silently (the worker wrote the
// bytes and exited 0, but the merger read something else) therefore becomes
// a precise, retryable IntegrityError instead of a wrong figure. The length
// check catches truncation and padding outright; the hash catches flipped
// bytes the length cannot.

// FNV-1a over `bytes` (offset 0xcbf29ce484222325, prime 0x100000001b3) —
// the same hash Scenario::CanonicalHash uses, kept in one place.
uint64_t Fnv1a64(std::string_view bytes);

// A std::invalid_argument subclass for envelope length/hash mismatches, so
// callers (shard fleet drivers) can tell transport corruption — retryable —
// from schema errors, which re-running the same worker cannot fix.
class IntegrityError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Wraps a canonical JSON object `body` in the checksummed envelope above.
std::string WrapChecksummedBody(const std::string& version_key, int version,
                                std::string_view body);

// The opened view of a document that may or may not carry an envelope.
struct ChecksummedDocument {
  // The envelope's version, or 0 when no "<version_key>":N prefix was
  // recognized (the caller's body parse then produces its usual precise
  // error for garbage input).
  int version = 0;
  bool checksummed = false;
  // For an envelope: the verified body bytes. Otherwise the whole (trimmed)
  // input — a legacy flat document carrying the version key inside. Views
  // into the caller's `text`; valid only while that buffer lives.
  std::string_view body;
};

// Detects and verifies the envelope on raw bytes. Input starting with
// '{"<version_key>":N,"body_bytes":' is treated as an envelope: its length
// and FNV-1a are checked (IntegrityError on mismatch, with `source` — a file
// name, may be empty — named in the message) and the body view returned.
// Anything else passes through unverified as a legacy flat document.
ChecksummedDocument OpenChecksummedDocument(std::string_view text,
                                            const std::string& version_key,
                                            const std::string& context,
                                            const std::string& source = "");

// --- value tree ------------------------------------------------------------

// A parsed JSON value. Object keys keep insertion order but are looked up by
// name; the parser rejects duplicate keys (a duplicate would make canonical
// forms ambiguous).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  const Value* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

// Parses `text` as one JSON value (trailing characters are an error).
// `context` prefixes every error message, e.g. "Scenario::FromJson";
// throws std::invalid_argument with a byte position on malformed input.
Value Parse(std::string_view text, const std::string& context);

// Throws std::invalid_argument("<context>: <what>"). The shared spelling
// for schema-level failures.
[[noreturn]] void Fail(const std::string& context, const std::string& what);

// --- schema mapping --------------------------------------------------------

// Checked double -> int conversion: rejects NaN/inf/out-of-range/fractional
// values (casting those is UB, and these functions ingest cross-process
// input that must fail cleanly). `what` names the field in the error.
int CheckedInt(double value, const std::string& what, const std::string& context);
// Same for int64. Doubles represent integers exactly only up to 2^53;
// larger magnitudes are rejected rather than silently rounded.
int64_t CheckedInt64(double value, const std::string& what, const std::string& context);

// Parses the AppendUint64Hex form ("0x..." hex string) back to a uint64.
uint64_t ParseUint64Hex(const std::string& text, const std::string& what,
                        const std::string& context);

// A strict view over one object: every Get marks its key as consumed, and
// Finish() rejects unknown keys, so schema drift fails loudly instead of
// silently dropping a field (which would break identity contracts).
class ObjectReader {
 public:
  // `where` names the object in errors ("scenario", "replica", ...);
  // `context` is the operation prefix ("Scenario::FromJson", ...).
  ObjectReader(const Value& value, std::string where, std::string context);

  // Returns the value at `key` after checking its kind; a kNumber request
  // also accepts kString (the "inf"/"-inf"/"nan" spellings — GetNumber
  // decodes them, other callers must handle the string themselves).
  const Value& Get(const std::string& key, Value::Kind kind);

  double GetNumber(const std::string& key);
  int GetInt(const std::string& key);
  int64_t GetInt64(const std::string& key);
  uint64_t GetUint64Hex(const std::string& key);
  std::string GetString(const std::string& key);
  bool GetBool(const std::string& key);
  const std::vector<Value>& GetArray(const std::string& key);
  const Value& GetObject(const std::string& key);

  // Rejects any key not consumed by a Get call.
  void Finish();

  const std::string& context() const { return context_; }
  const std::string& where() const { return where_; }

 private:
  const Value& value_;
  std::string where_;
  std::string context_;
  std::vector<std::string> consumed_;
};

}  // namespace longstore::json

#endif  // LONGSTORE_SRC_UTIL_JSON_H_
