// Strong unit types for the longstore library.
//
// All internal time arithmetic is carried out in hours (the unit used by the
// paper's spec-sheet inputs, e.g. MV = 1.4e6 hours). Strong types keep hour /
// year / second confusions out of the model code; raw doubles appear only at
// formatting and math-kernel boundaries.

#ifndef LONGSTORE_SRC_UTIL_UNITS_H_
#define LONGSTORE_SRC_UTIL_UNITS_H_

#include <cmath>
#include <compare>
#include <limits>
#include <string>

namespace longstore {

// Calendar conversions used throughout the paper's arithmetic
// (e.g. 2.8e5 hours -> 31.96 years requires 8760 hours per year).
inline constexpr double kHoursPerYear = 8760.0;
inline constexpr double kHoursPerDay = 24.0;
inline constexpr double kMinutesPerHour = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;

// A span of simulated or calendar time. Internally stored in hours.
// Supports +/- and scaling; infinity models "never" (e.g. no latent-fault
// detection process at all).
class Duration {
 public:
  constexpr Duration() : hours_(0.0) {}

  static constexpr Duration Hours(double h) { return Duration(h); }
  static constexpr Duration Minutes(double m) { return Duration(m / kMinutesPerHour); }
  static constexpr Duration Seconds(double s) { return Duration(s / kSecondsPerHour); }
  static constexpr Duration Days(double d) { return Duration(d * kHoursPerDay); }
  static constexpr Duration Years(double y) { return Duration(y * kHoursPerYear); }
  static constexpr Duration Infinite() {
    return Duration(std::numeric_limits<double>::infinity());
  }
  static constexpr Duration Zero() { return Duration(0.0); }

  constexpr double hours() const { return hours_; }
  constexpr double minutes() const { return hours_ * kMinutesPerHour; }
  constexpr double seconds() const { return hours_ * kSecondsPerHour; }
  constexpr double days() const { return hours_ / kHoursPerDay; }
  constexpr double years() const { return hours_ / kHoursPerYear; }

  constexpr bool is_infinite() const { return std::isinf(hours_); }
  constexpr bool is_zero() const { return hours_ == 0.0; }
  constexpr bool is_negative() const { return hours_ < 0.0; }

  constexpr Duration operator+(Duration other) const { return Duration(hours_ + other.hours_); }
  constexpr Duration operator-(Duration other) const { return Duration(hours_ - other.hours_); }
  constexpr Duration operator*(double s) const { return Duration(hours_ * s); }
  constexpr Duration operator/(double s) const { return Duration(hours_ / s); }
  constexpr double operator/(Duration other) const { return hours_ / other.hours_; }
  Duration& operator+=(Duration other) {
    hours_ += other.hours_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    hours_ -= other.hours_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

  // Human-readable rendering with an automatically chosen unit, e.g.
  // "20.0 min", "1460 h", "32.0 y".
  std::string ToString() const;

 private:
  explicit constexpr Duration(double hours) : hours_(hours) {}

  double hours_;
};

inline constexpr Duration operator*(double s, Duration d) { return d * s; }

// An occurrence rate (events per hour). The reciprocal of a mean interval.
// Rate and Duration convert through MeanInterval()/InverseOf() so that the
// memoryless-process arithmetic in the model reads like the paper.
class Rate {
 public:
  constexpr Rate() : per_hour_(0.0) {}

  static constexpr Rate PerHour(double r) { return Rate(r); }
  static constexpr Rate PerYear(double r) { return Rate(r / kHoursPerYear); }
  static constexpr Rate Zero() { return Rate(0.0); }

  // The rate whose mean inter-event interval is `d`. An infinite duration
  // yields a zero rate ("never happens").
  static constexpr Rate InverseOf(Duration d) {
    if (d.is_infinite()) {
      return Rate(0.0);
    }
    return Rate(1.0 / d.hours());
  }

  constexpr double per_hour() const { return per_hour_; }
  constexpr double per_year() const { return per_hour_ * kHoursPerYear; }
  constexpr bool is_zero() const { return per_hour_ == 0.0; }

  // Mean time between events; infinite for a zero rate.
  constexpr Duration MeanInterval() const {
    if (per_hour_ == 0.0) {
      return Duration::Infinite();
    }
    return Duration::Hours(1.0 / per_hour_);
  }

  constexpr Rate operator+(Rate other) const { return Rate(per_hour_ + other.per_hour_); }
  constexpr Rate operator*(double s) const { return Rate(per_hour_ * s); }
  constexpr Rate operator/(double s) const { return Rate(per_hour_ / s); }

  constexpr auto operator<=>(const Rate&) const = default;

 private:
  explicit constexpr Rate(double per_hour) : per_hour_(per_hour) {}

  double per_hour_;
};

inline constexpr Rate operator*(double s, Rate r) { return r * s; }

// Probability of an event within a mission of length `t` for a memoryless
// process with mean time `mttf` (paper equation 1): P = 1 - exp(-t / MTTF).
double MissionLossProbability(Duration mttf, Duration mission);

// Inverse of MissionLossProbability: the MTTF required so that the loss
// probability over `mission` is exactly `p`.
Duration MttfForLossProbability(double p, Duration mission);

// Clamps a computed probability into [0, 1]; the paper's linearized
// approximations (eq 2) can exceed 1 outside their validity region and the
// saturation P(V2 or L2 | L1) ~= 1 is part of the §5.4 arithmetic.
double ClampProbability(double p);

}  // namespace longstore

#endif  // LONGSTORE_SRC_UTIL_UNITS_H_
