// Histograms for simulation output (fault-interval, detection-latency and
// time-to-loss distributions).

#ifndef LONGSTORE_SRC_UTIL_HISTOGRAM_H_
#define LONGSTORE_SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace longstore {

// Fixed-width linear histogram over [lo, hi); out-of-range samples are
// counted in underflow/overflow buckets so totals always reconcile.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, int bucket_count);

  void Add(double x);

  int bucket_count() const { return static_cast<int>(buckets_.size()); }
  int64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t total() const { return total_; }

  // ASCII bar rendering, `width` characters for the largest bucket.
  std::string Render(int width) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<int64_t> buckets_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

// Logarithmic histogram: geometric buckets covering [lo, hi). Suited to
// quantities spanning orders of magnitude (MTTDL varies from years to
// millennia across the paper's parameter space).
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, int buckets_per_decade);

  void Add(double x);

  int bucket_count() const { return static_cast<int>(buckets_.size()); }
  int64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t total() const { return total_; }

  std::string Render(int width) const;

 private:
  double log_lo_;
  double log_hi_;
  double log_step_;
  std::vector<int64_t> buckets_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_UTIL_HISTOGRAM_H_
