#include "src/util/units.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace longstore {

std::string Duration::ToString() const {
  if (is_infinite()) {
    return "inf";
  }
  char buf[64];
  const double h = hours_;
  const double abs_h = std::fabs(h);
  if (abs_h >= kHoursPerYear) {
    std::snprintf(buf, sizeof(buf), "%.6g y", h / kHoursPerYear);
  } else if (abs_h >= kHoursPerDay) {
    std::snprintf(buf, sizeof(buf), "%.6g d", h / kHoursPerDay);
  } else if (abs_h >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.6g h", h);
  } else if (abs_h >= 1.0 / kMinutesPerHour) {
    std::snprintf(buf, sizeof(buf), "%.6g min", h * kMinutesPerHour);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g s", h * kSecondsPerHour);
  }
  return buf;
}

double MissionLossProbability(Duration mttf, Duration mission) {
  if (mttf.is_infinite()) {
    return 0.0;
  }
  if (mttf.hours() <= 0.0) {
    return 1.0;
  }
  return -std::expm1(-mission.hours() / mttf.hours());
}

Duration MttfForLossProbability(double p, Duration mission) {
  p = ClampProbability(p);
  if (p <= 0.0) {
    return Duration::Infinite();
  }
  if (p >= 1.0) {
    return Duration::Zero();
  }
  return Duration::Hours(-mission.hours() / std::log1p(-p));
}

double ClampProbability(double p) { return std::clamp(p, 0.0, 1.0); }

}  // namespace longstore
