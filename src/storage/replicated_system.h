// Discrete-event model of an r-way replicated archive subject to visible and
// latent faults, audited by a scrub policy, repaired from intact peers, with
// correlated faults via the paper's hazard multiplier and/or shared-risk
// common-mode events.
//
// The system is described by a Scenario (src/scenario/scenario.h): one
// ReplicaSpec per replica, so fleets may mix media, fault distributions,
// scrub cadences, repair processes and initial ages. At construction the
// specs are resolved into flat per-replica parameter arrays; the event loop
// reads only those arrays and never allocates (see src/sim/README.md for
// the reuse contract). The legacy homogeneous StorageSimConfig is accepted
// through Scenario::FromLegacy and runs bit-identically to the pre-Scenario
// engine.
//
// Data loss (the paper's "double-fault" generalized to r replicas) occurs the
// moment no intact replica remains — whether or not the outstanding faults
// were detected, matching the paper's data-centric reliability perspective
// (§5.3: "our reliability analysis is from the perspective of the data").

#ifndef LONGSTORE_SRC_STORAGE_REPLICATED_SYSTEM_H_
#define LONGSTORE_SRC_STORAGE_REPLICATED_SYSTEM_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/storage/config.h"
#include "src/storage/metrics.h"
#include "src/util/random.h"

namespace longstore {

// Importance-sampling change of measure (src/rare/biased_sampler.h). The
// storage layer only holds a pointer; the rare-event subsystem owns the
// math.
class BiasedFaultSampler;
struct FaultBias;

enum class ReplicaState {
  kHealthy,
  kLatentFaulty,     // fault present, undetected
  kFaultyDetected,   // visible fault, or detected latent fault; under repair
};

// Largest trial block the batch prefilter processes per call; sized to match
// the sweep layer's trial block (kTrialBlockSize in src/sweep/batch_exec.h,
// which static_asserts the two agree) so scratch arrays live on the stack.
inline constexpr int kTrialPrefilterMaxBlock = 256;

// Whether the constructor re-validates the scenario. Callers that already
// ran Scenario::Validate() / StorageSimConfig::Validate() (the Monte Carlo
// drivers validate once per estimate) pass kPreValidated to skip the
// per-construction throw path; a debug build still cross-checks.
enum class ConfigValidation { kValidate, kPreValidated };

class ReplicatedStorageSystem : public SimClient {
 public:
  // `sim`, `rng` and `trace` must outlive the system. `trace` may be null.
  // Attaches itself as `sim`'s client: one system per simulator.
  ReplicatedStorageSystem(Simulator* sim, Rng* rng, Scenario scenario,
                          TraceRecorder* trace = nullptr,
                          ConfigValidation validation = ConfigValidation::kValidate);

  // Legacy flat-config front end: converts via Scenario::FromLegacy.
  // Homogeneous by construction and bit-identical to the pre-Scenario
  // engine.
  ReplicatedStorageSystem(Simulator* sim, Rng* rng, StorageSimConfig config,
                          TraceRecorder* trace = nullptr,
                          ConfigValidation validation = ConfigValidation::kValidate);

  // Schedules the initial fault/scrub/common-mode events. Call once per run,
  // before running the simulator.
  void Start();

  // Returns the system to its initial (all-healthy, time-zero) state so the
  // same instance can run another trial. The caller must Reset() the
  // simulator and reseed the Rng first; see src/sim/README.md for the reuse
  // contract. No buffer is reallocated.
  void Reset();

  // Attaches an importance-sampling fault sampler: all *fault-time* draws
  // (per-replica and system-level, exponential and Weibull) go through it
  // and accumulate the trial's likelihood ratio; repair, scrub/detection,
  // and common-mode draws stay unbiased. Must be set before Start();
  // nullptr (the default) keeps the unbiased path, bit for bit. The sampler
  // must outlive the system; the caller resets it per trial.
  void set_fault_sampler(BiasedFaultSampler* sampler) { fault_sampler_ = sampler; }

  // Event dispatch from the simulator; not for direct use.
  void OnSimEvent(uint16_t tag, int32_t a, int32_t b) override;

  bool lost() const { return lost_; }
  // Valid only when lost().
  Duration loss_time() const { return loss_time_; }

  const SimMetrics& metrics() const { return metrics_; }
  const Scenario& scenario() const { return scenario_; }

  // One uniform draw Start() consumes, with the parameters needed to map
  // that uniform to the initial event delay using the engine's exact
  // arithmetic. Built once at construction, in draw order: per-replica (or
  // system-level under kPaper) visible then latent fault clocks, then one
  // per common-mode source. Sites whose process never fires (infinite mean)
  // consume no draw and are omitted, mirroring the scheduling guards.
  struct InitialDrawSite {
    bool weibull = false;
    double mean_hours = 0.0;  // exponential: delay = -log(u) * mean_hours
    // Weibull residual-lifetime parameters (see DrawFaultDelay).
    double shape = 0.0;
    double inv_shape = 0.0;
    double scale_hours = 0.0;
    double age0 = 0.0;            // initial age in scale units
    double age0_pow_shape = 0.0;  // pow(age0, shape), hoisted out of the loop
  };
  const std::vector<InitialDrawSite>& initial_draw_sites() const {
    return initial_draw_sites_;
  }
  // Earliest initial event scheduled without consuming a draw (the first
  // periodic scrub tick when record_scrub_passes is set); infinite when the
  // only initial events are the randomized ones in initial_draw_sites().
  Duration initial_deterministic_event() const {
    return initial_deterministic_event_;
  }

  ReplicaState replica_state(int i) const {
    return replicas_[static_cast<size_t>(i)].state;
  }
  int replica_count() const { return replica_count_; }
  int faulty_count() const { return faulty_count_; }
  int intact_count() const { return replica_count_ - faulty_count_; }

 private:
  struct Replica {
    ReplicaState state = ReplicaState::kHealthy;
    FaultKind current_fault = FaultKind::kVisible;
    Duration fault_time;
    Duration birth_time;   // last replacement; Weibull age reference
    EventId visible_event;
    EventId latent_event;
    EventId detect_event;
    EventId repair_event;
  };

  // A ReplicaSpec resolved to the flat values the event loop reads: means,
  // precomputed Weibull scales, concrete scrub phase. Built once at
  // construction (specs are immutable for the system's lifetime), indexed
  // like `replicas_`, and never touched by Reset or the hot path beyond
  // loads.
  struct ResolvedReplica {
    Duration mv = Duration::Infinite();
    Duration ml = Duration::Infinite();
    Duration mrv = Duration::Zero();
    Duration mrl = Duration::Zero();
    FaultDistribution fault_distribution = FaultDistribution::kExponential;
    RepairDistribution repair_distribution = RepairDistribution::kExponential;
    double weibull_shape = 1.0;
    // Weibull scales matching the configured means, precomputed once (the
    // draw path runs on every fault reschedule).
    Duration weibull_scale_mv = Duration::Infinite();
    Duration weibull_scale_ml = Duration::Infinite();
    Duration initial_age = Duration::Zero();
    ScrubPolicy scrub = ScrubPolicy::None();
    Duration scrub_phase = Duration::Zero();  // periodic-scrub phase offset
  };

  // Simulator event tags (payload `a` = replica or common-mode source index).
  enum EventTag : uint16_t {
    kEvVisibleFault,
    kEvLatentFault,
    kEvDetect,
    kEvScrubTick,
    kEvRepairComplete,
    kEvSystemVisibleFault,  // kPaper convention
    kEvSystemLatentFault,   // kPaper convention
    kEvSystemDetect,        // kPaper convention
    kEvCommonMode,
  };

  // --- initialization ---
  void ResolveSpecs();
  void InitializeState();
  void BuildInitialDrawPlan();

  // --- scheduling helpers ---
  double CorrelationMultiplier() const;
  Duration DrawFaultDelay(int i, FaultKind kind) const;
  Duration DrawRepairDuration(int i, FaultKind kind) const;
  Duration NextScrubTick(int i) const;
  void ScheduleReplicaFaults(int i);
  void RescheduleFaultsForCorrelationChange();
  void ScheduleSystemFaultClocks();  // kPaper convention
  void ScheduleDetection(int i);
  void ScheduleScrubTick(int i);
  void ScheduleCommonModeSource(size_t source_index);

  // --- event handlers ---
  void OnVisibleFault(int i);
  void OnLatentFault(int i);
  void OnDetect(int i);
  void OnScrubTick(int i);
  void OnRepairComplete(int i);
  void OnSystemFault(FaultKind kind);  // kPaper convention
  void OnSystemDetect();               // kPaper convention
  void OnCommonModeEvent(size_t source_index);

  // --- state transitions ---
  void InflictFault(int i, FaultKind kind, bool detected);
  void StartRepair(int i);
  void BeginNextSerialRepair();
  int PickRandomHealthyReplica();
  std::optional<int> OldestUndetectedLatent() const;
  // Inline null check: Monte Carlo trials run without a recorder, and the
  // hot path must not pay for a std::string argument per event.
  void RecordTrace(TraceEventKind kind, int replica) {
    if (trace_ != nullptr) {
      RecordTraceImpl(kind, replica, {});
    }
  }
  void RecordTrace(TraceEventKind kind, int replica, std::string detail) {
    if (trace_ != nullptr) {
      RecordTraceImpl(kind, replica, std::move(detail));
    }
  }
  void RecordTraceImpl(TraceEventKind kind, int replica, std::string detail);

  Simulator* sim_;
  Rng* rng_;
  Scenario scenario_;
  TraceRecorder* trace_;
  BiasedFaultSampler* fault_sampler_ = nullptr;

  // Shared scenario structure, flattened for the hot path.
  int replica_count_ = 0;
  int required_intact_ = 1;
  double alpha_ = 1.0;
  RateConvention convention_ = RateConvention::kPhysical;
  bool record_scrub_passes_ = false;
  bool visible_fault_surfaces_latent_ = false;

  std::vector<ResolvedReplica> resolved_;
  std::vector<InitialDrawSite> initial_draw_sites_;
  Duration initial_deterministic_event_ = Duration::Infinite();
  std::vector<Replica> replicas_;
  int faulty_count_ = 0;
  bool lost_ = false;
  Duration loss_time_;
  SimMetrics metrics_;

  // Window-of-vulnerability bookkeeping (Figure 2 measurements).
  bool window_open_ = false;
  FaultKind window_first_fault_ = FaultKind::kVisible;

  // kPaper-convention machinery: system-level clocks and serial repair. The
  // repair queue is a fixed-capacity ring over replica indices (each replica
  // is queued at most once), so enqueue/dequeue never allocate or shift.
  // kPaper requires a homogeneous fleet (Scenario::Validate enforces it), so
  // the system-level clocks read resolved_[0].
  EventId system_visible_event_;
  EventId system_latent_event_;
  EventId system_detect_event_;
  std::vector<int> repair_ring_;
  size_t repair_head_ = 0;
  size_t repair_queued_ = 0;
  bool repair_active_ = false;

  bool started_ = false;
};

// Convenience one-shot runs used by the Monte Carlo harness and examples.
struct RunOutcome {
  // Time of data loss; nullopt if the system survived the horizon (censored).
  std::optional<Duration> loss_time;
  SimMetrics metrics;
  // Log-likelihood ratio of the trial under the attached importance-sampling
  // measure; exactly 0 (weight 1) for unbiased runs.
  double log_weight = 0.0;
};

// Owns one Simulator + Rng + ReplicatedStorageSystem and reuses them across
// trials: Run() resets all three, reseeds, and runs to loss or `horizon`.
// Construction validates the scenario once (unless told it is pre-validated);
// the per-trial path performs no validation and no steady-state allocation.
// A trial's outcome is bit-identical to a freshly constructed run with the
// same seed.
class TrialRunner {
 public:
  explicit TrialRunner(const Scenario& scenario,
                       ConfigValidation validation = ConfigValidation::kValidate);
  explicit TrialRunner(const StorageSimConfig& config,
                       ConfigValidation validation = ConfigValidation::kValidate);

  // Importance-sampling variants: fault-time draws are tilted by `bias` and
  // each outcome carries the trial's exact log-likelihood ratio
  // (RunOutcome::log_weight). The forcing window is the horizon passed to
  // Run(). An identity bias reproduces the unbiased runner bit for bit.
  TrialRunner(const Scenario& scenario, ConfigValidation validation,
              const FaultBias& bias);
  TrialRunner(const StorageSimConfig& config, ConfigValidation validation,
              const FaultBias& bias);

  // Self-referential (the system holds pointers to the simulator and rng).
  TrialRunner(const TrialRunner&) = delete;
  TrialRunner& operator=(const TrialRunner&) = delete;
  ~TrialRunner();

  RunOutcome Run(uint64_t seed, Duration horizon);

  // Counter-mode trial: like Run(), but the generator is reseeded with
  // ReseedCounter(key, trial) so draw #n of the trial is the pure function
  // CounterMix(key, trial, n). Used by SeedMode::kCounterV1 sweeps; the
  // addressability is what makes trial-range sharding and the batch
  // prefilter below deterministic.
  RunOutcome RunCounter(uint64_t key, uint64_t trial, Duration horizon);

  // Batch censored-trial prefilter for counter-mode trials. For `count`
  // consecutive trials starting at `begin_trial` (count <=
  // kTrialPrefilterMaxBlock), computes each trial's initial fault/common-mode
  // event delays directly from CounterMix — the engine's exact arithmetic on
  // the exact uniforms RunCounter would consume — and sets skip[i] = 1 when
  // the trial provably processes no event within `horizon`: every randomized
  // initial event lands strictly after the horizon and so does the earliest
  // deterministic one. A skipped trial's outcome is exactly RunOutcome{}
  // (censored, zero metrics). Returns false (skip[] untouched) when the
  // prefilter cannot apply: an importance sampler is attached, or the
  // horizon is infinite, or a deterministic initial event (scrub tick)
  // falls inside the horizon.
  bool PrefilterCensoredBlock(uint64_t key, int64_t begin_trial, int count,
                              Duration horizon, uint8_t* skip);

  const ReplicatedStorageSystem& system() const { return system_; }

 private:
  Simulator sim_;
  Rng rng_;
  ReplicatedStorageSystem system_;
  std::unique_ptr<BiasedFaultSampler> sampler_;  // null = unbiased
};

// Runs a fresh system until data loss or `horizon`, whichever comes first.
RunOutcome RunToLossOrHorizon(const Scenario& scenario, uint64_t seed,
                              Duration horizon);
RunOutcome RunToLossOrHorizon(const StorageSimConfig& config, uint64_t seed,
                              Duration horizon);

}  // namespace longstore

#endif  // LONGSTORE_SRC_STORAGE_REPLICATED_SYSTEM_H_
