// Per-run metrics collected by the storage simulator.

#ifndef LONGSTORE_SRC_STORAGE_METRICS_H_
#define LONGSTORE_SRC_STORAGE_METRICS_H_

#include <cstdint>

#include "src/util/stats.h"

namespace longstore {

// Fault kinds used in window bookkeeping (Figure 2's axes).
enum class FaultKind { kVisible = 0, kLatent = 1 };

struct SimMetrics {
  int64_t visible_faults = 0;
  int64_t latent_faults = 0;
  int64_t latent_detections = 0;
  int64_t repairs_completed = 0;
  int64_t common_mode_events = 0;
  // Faults inflicted through a shared-risk-group event (subset of
  // visible_faults + latent_faults); the Talagala-style benches use this to
  // attribute fault fractions to shared components.
  int64_t common_mode_faults = 0;

  // Window-of-vulnerability bookkeeping: a window opens when the system goes
  // from all-healthy to one-faulty; it either closes (all-healthy again) or a
  // second fault arrives first. The 2x2 matrix is the measured counterpart of
  // the paper's Figure 2 / equations 3-6.
  int64_t windows_opened[2] = {0, 0};               // by first-fault kind
  int64_t windows_survived[2] = {0, 0};             // closed without 2nd fault
  int64_t second_faults[2][2] = {{0, 0}, {0, 0}};   // [first kind][second kind]

  // Latency from latent-fault occurrence to detection (the measured MDL) and
  // realized repair durations.
  RunningStats detection_latency_hours;
  RunningStats repair_duration_hours;

  void Merge(const SimMetrics& other) {
    visible_faults += other.visible_faults;
    latent_faults += other.latent_faults;
    latent_detections += other.latent_detections;
    repairs_completed += other.repairs_completed;
    common_mode_events += other.common_mode_events;
    common_mode_faults += other.common_mode_faults;
    for (int i = 0; i < 2; ++i) {
      windows_opened[i] += other.windows_opened[i];
      windows_survived[i] += other.windows_survived[i];
      for (int j = 0; j < 2; ++j) {
        second_faults[i][j] += other.second_faults[i][j];
      }
    }
    detection_latency_hours.Merge(other.detection_latency_hours);
    repair_duration_hours.Merge(other.repair_duration_hours);
  }
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_STORAGE_METRICS_H_
