// Legacy flat configuration for the replicated-storage simulation.
//
// StorageSimConfig describes a *homogeneous* fleet: one FaultParams, one
// scrub policy, one repair distribution and one Weibull shape shared by
// every replica. The engine's native description is the composable Scenario
// (src/scenario/scenario.h), which allows every one of those to differ per
// replica; this struct remains as a thin front end — Scenario::FromLegacy
// converts it, and the conversion is bit-identical to the pre-Scenario
// engine for every valid configuration. New code should build Scenarios
// directly (see src/scenario/README.md for the migration table).

#ifndef LONGSTORE_SRC_STORAGE_CONFIG_H_
#define LONGSTORE_SRC_STORAGE_CONFIG_H_

#include <optional>
#include <string>
#include <vector>

#include "src/model/fault_params.h"
#include "src/model/replica_ctmc.h"
#include "src/model/strategies.h"
#include "src/scenario/scenario.h"

namespace longstore {

struct StorageSimConfig {
  int replica_count = 2;

  // Minimum number of intact replicas/fragments required to reconstruct the
  // data. 1 models whole-data replication (the paper's setting); m > 1
  // models an (n, m) erasure code — n fragments of which any m suffice
  // (OceanStore-style cryptographic sharing, §7). Data loss occurs the
  // moment fewer than `required_intact` fragments remain intact.
  int required_intact = 1;

  // Fault and repair means. `params.mdl` is ignored by the simulator — the
  // detection process is the scrub policy below, which *induces* a detection
  // latency (measured and reported so it can be compared with the analytic
  // MDL). `params.alpha` drives the hazard-multiplier correlation.
  FaultParams params;

  ScrubPolicy scrub = ScrubPolicy::None();

  // The shared enums live at namespace scope (src/scenario/scenario.h) so
  // per-replica specs use the same vocabulary; the nested aliases keep the
  // long-standing StorageSimConfig::FaultDistribution::kWeibull spelling.
  using RepairDistribution = longstore::RepairDistribution;
  RepairDistribution repair_distribution = RepairDistribution::kExponential;

  using FaultDistribution = longstore::FaultDistribution;
  FaultDistribution fault_distribution = FaultDistribution::kExponential;
  // Weibull shape for both fault types; < 1 infant mortality, > 1 wear-out.
  // Scales are chosen so the mean matches MV / ML.
  double weibull_shape = 1.0;

  // kPhysical: each healthy replica runs its own fault clock and repairs
  // proceed in parallel. kPaper: system-level fault clocks at the single-unit
  // rates and serial repair, the convention of equations 7-12.
  RateConvention convention = RateConvention::kPhysical;

  // Periodic scrub phases: staggered spreads replica audit times evenly
  // across the period (what operators do); aligned audits all replicas at
  // once (worst case for detection of simultaneous latent faults).
  bool scrub_staggered = true;

  // Record kScrubPass trace events (timeline rendering only; expensive for
  // long runs).
  bool record_scrub_passes = false;

  // Optional per-replica initial hardware ages (hours), used by the Weibull
  // fault distribution to model same-batch vs rolling-procurement fleets
  // (§6.5: drives from one batch sit at the same point of the bathtub
  // curve). Empty = all replicas start new. Must have replica_count entries
  // when non-empty.
  std::vector<double> initial_age_hours;

  // A visible fault striking a replica that already carries an undetected
  // latent fault surfaces it (the whole replica is rebuilt). Off by default
  // to match the paper's model, which considers at most one outstanding fault
  // per replica.
  bool visible_fault_surfaces_latent = false;

  std::vector<CommonModeSource> common_mode;

  // Returns an error message if the configuration is inconsistent.
  std::optional<std::string> Validate() const;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_STORAGE_CONFIG_H_
