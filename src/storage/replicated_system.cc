#include "src/storage/replicated_system.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/rare/biased_sampler.h"

namespace longstore {

std::optional<std::string> StorageSimConfig::Validate() const {
  if (replica_count < 1) {
    return "replica_count must be >= 1";
  }
  if (required_intact < 1 || required_intact > replica_count) {
    return "required_intact must lie in [1, replica_count]";
  }
  if (!initial_age_hours.empty()) {
    if (static_cast<int>(initial_age_hours.size()) != replica_count) {
      return "initial_age_hours must have replica_count entries (or be empty)";
    }
    for (double age : initial_age_hours) {
      if (!(age >= 0.0) || !std::isfinite(age)) {
        return "initial ages must be finite and non-negative";
      }
    }
  }
  if (auto error = params.Validate()) {
    return error;
  }
  if (fault_distribution == FaultDistribution::kWeibull) {
    if (!(weibull_shape > 0.0) || std::isinf(weibull_shape)) {
      return "weibull_shape must be finite and positive";
    }
    if (params.alpha < 1.0) {
      return "hazard-multiplier correlation (alpha < 1) requires exponential faults; "
             "Weibull fault clocks are age-based and cannot be rescaled memorylessly";
    }
    if (convention == RateConvention::kPaper) {
      return "Weibull faults are only supported under the physical convention";
    }
  }
  if (convention == RateConvention::kPaper) {
    if (scrub.kind == ScrubPolicy::Kind::kPeriodic) {
      return "the paper rate convention pairs with memoryless detection; use an "
             "exponential or on-access scrub policy (or the physical convention)";
    }
    if (!common_mode.empty()) {
      return "common-mode sources are only supported under the physical convention";
    }
  }
  if (scrub.kind != ScrubPolicy::Kind::kNone &&
      (!(scrub.interval.hours() > 0.0) || scrub.interval.is_infinite())) {
    // An infinite interval would feed NaN into the periodic tick arithmetic
    // and "never" into ScheduleAfter (which requires finite times).
    return "scrub interval must be finite and positive";
  }
  if (record_scrub_passes && scrub.kind != ScrubPolicy::Kind::kPeriodic) {
    return "record_scrub_passes requires a periodic scrub policy";
  }
  for (const CommonModeSource& source : common_mode) {
    if (!(source.event_rate.per_hour() > 0.0) ||
        std::isinf(source.event_rate.per_hour())) {
      // An infinite rate means a zero mean interval: the source would fire
      // an unbounded event storm at time zero.
      return "common-mode source '" + source.name +
             "' needs a positive, finite event rate";
    }
    if (source.hit_probability < 0.0 || source.hit_probability > 1.0 ||
        source.visible_fraction < 0.0 || source.visible_fraction > 1.0) {
      return "common-mode source '" + source.name + "' probabilities must lie in [0, 1]";
    }
    for (int member : source.members) {
      if (member < 0 || member >= replica_count) {
        return "common-mode source '" + source.name + "' has an out-of-range member";
      }
    }
  }
  return std::nullopt;
}

ReplicatedStorageSystem::ReplicatedStorageSystem(Simulator* sim, Rng* rng,
                                                 Scenario scenario,
                                                 TraceRecorder* trace,
                                                 ConfigValidation validation)
    : sim_(sim), rng_(rng), scenario_(std::move(scenario)), trace_(trace) {
  if (validation == ConfigValidation::kValidate) {
    if (auto error = scenario_.Validate()) {
      throw std::invalid_argument("Scenario: " + *error);
    }
  } else {
#ifndef NDEBUG
    // The caller promised it validated already; cross-check in debug builds.
    if (auto error = scenario_.Validate()) {
      throw std::logic_error("Scenario passed as pre-validated but invalid: " + *error);
    }
#endif
  }
  sim_->set_client(this);
  replica_count_ = scenario_.replica_count();
  required_intact_ = scenario_.required_intact;
  alpha_ = scenario_.alpha;
  convention_ = scenario_.convention;
  record_scrub_passes_ = scenario_.record_scrub_passes;
  visible_fault_surfaces_latent_ = scenario_.visible_fault_surfaces_latent;
  replicas_.resize(static_cast<size_t>(replica_count_));
  repair_ring_.resize(static_cast<size_t>(replica_count_), 0);
  ResolveSpecs();
  InitializeState();
  BuildInitialDrawPlan();
}

ReplicatedStorageSystem::ReplicatedStorageSystem(Simulator* sim, Rng* rng,
                                                 StorageSimConfig config,
                                                 TraceRecorder* trace,
                                                 ConfigValidation validation)
    : ReplicatedStorageSystem(sim, rng,
                              [&config, validation]() {
                                if (validation == ConfigValidation::kValidate) {
                                  if (auto error = config.Validate()) {
                                    throw std::invalid_argument("StorageSimConfig: " +
                                                                *error);
                                  }
                                }
                                return Scenario::FromLegacy(config);
                              }(),
                              trace,
                              // A valid legacy config converts to a valid
                              // scenario; skip re-validating the conversion.
                              validation == ConfigValidation::kValidate
                                  ? ConfigValidation::kPreValidated
                                  : validation) {}

void ReplicatedStorageSystem::ResolveSpecs() {
  resolved_.resize(static_cast<size_t>(replica_count_));
  for (int i = 0; i < replica_count_; ++i) {
    const ReplicaSpec& spec = scenario_.replicas[static_cast<size_t>(i)];
    ResolvedReplica& r = resolved_[static_cast<size_t>(i)];
    r.mv = spec.mv;
    r.ml = spec.ml;
    r.mrv = spec.mrv;
    r.mrl = spec.mrl;
    r.fault_distribution = spec.fault_distribution;
    r.repair_distribution = spec.repair_distribution;
    r.weibull_shape = spec.weibull_shape;
    if (spec.fault_distribution == FaultDistribution::kWeibull) {
      const double gamma = std::tgamma(1.0 + 1.0 / spec.weibull_shape);
      r.weibull_scale_mv = spec.mv / gamma;
      r.weibull_scale_ml = spec.ml / gamma;
    } else {
      r.weibull_scale_mv = Duration::Infinite();
      r.weibull_scale_ml = Duration::Infinite();
    }
    r.initial_age = Duration::Hours(spec.initial_age_hours);
    r.scrub = spec.scrub;
    if (spec.scrub_phase_hours >= 0.0) {
      r.scrub_phase = Duration::Hours(spec.scrub_phase_hours);
    } else if (spec.scrub.kind == ScrubPolicy::Kind::kPeriodic &&
               scenario_.scrub_staggered) {
      r.scrub_phase =
          spec.scrub.interval * (static_cast<double>(i) / replica_count_);
    } else {
      r.scrub_phase = Duration::Zero();
    }
  }
}

void ReplicatedStorageSystem::InitializeState() {
  for (int i = 0; i < replica_count_; ++i) {
    auto& replica = replicas_[static_cast<size_t>(i)];
    replica.state = ReplicaState::kHealthy;
    replica.current_fault = FaultKind::kVisible;
    replica.fault_time = Duration::Zero();
    // A pre-aged replica has a birth time in the (virtual) past.
    replica.birth_time =
        Duration::Zero() - resolved_[static_cast<size_t>(i)].initial_age;
    replica.visible_event = EventId();
    replica.latent_event = EventId();
    replica.detect_event = EventId();
    replica.repair_event = EventId();
  }
  faulty_count_ = 0;
  lost_ = false;
  loss_time_ = Duration::Zero();
  metrics_ = SimMetrics{};
  window_open_ = false;
  window_first_fault_ = FaultKind::kVisible;
  system_visible_event_ = EventId();
  system_latent_event_ = EventId();
  system_detect_event_ = EventId();
  repair_head_ = 0;
  repair_queued_ = 0;
  repair_active_ = false;
  started_ = false;
}

void ReplicatedStorageSystem::BuildInitialDrawPlan() {
  // Mirrors Start()'s draw sequence exactly; see the scheduling helpers for
  // the arithmetic being replicated. Any change to the initial scheduling
  // order must be reflected here (the prefilter tests cross-check).
  initial_draw_sites_.clear();
  const auto add_exponential = [&](Duration mean) {
    if (mean.is_infinite()) {
      return;  // never fires; the engine draws nothing (NextExponential guard)
    }
    InitialDrawSite site;
    site.mean_hours = mean.hours();  // CorrelationMultiplier() == 1 at start
    initial_draw_sites_.push_back(site);
  };
  const auto add_fault_site = [&](const ResolvedReplica& rp, FaultKind kind) {
    const Duration mean = kind == FaultKind::kVisible ? rp.mv : rp.ml;
    if (mean.is_infinite()) {
      return;  // ScheduleReplicaFaults skips the draw entirely
    }
    if (rp.fault_distribution != FaultDistribution::kWeibull) {
      add_exponential(mean);
      return;
    }
    InitialDrawSite site;
    site.weibull = true;
    site.shape = rp.weibull_shape;
    site.inv_shape = 1.0 / rp.weibull_shape;
    const Duration scale =
        kind == FaultKind::kVisible ? rp.weibull_scale_mv : rp.weibull_scale_ml;
    site.scale_hours = scale.hours();
    site.age0 = rp.initial_age.hours() / scale.hours();
    site.age0_pow_shape = std::pow(site.age0, rp.weibull_shape);
    initial_draw_sites_.push_back(site);
  };
  if (convention_ == RateConvention::kPaper) {
    // System-level clocks on replica 0's rates; always exponential
    // (validation rejects kPaper + Weibull).
    add_exponential(resolved_[0].mv);
    add_exponential(resolved_[0].ml);
  } else {
    for (int i = 0; i < replica_count_; ++i) {
      const ResolvedReplica& rp = resolved_[static_cast<size_t>(i)];
      add_fault_site(rp, FaultKind::kVisible);
      add_fault_site(rp, FaultKind::kLatent);
      // ScheduleScrubTick between replicas consumes no draw.
    }
  }
  for (const CommonModeSource& source : scenario_.common_mode) {
    add_exponential(source.event_rate.MeanInterval());
  }

  initial_deterministic_event_ = Duration::Infinite();
  if (convention_ != RateConvention::kPaper && record_scrub_passes_) {
    for (int i = 0; i < replica_count_; ++i) {
      const ResolvedReplica& rp = resolved_[static_cast<size_t>(i)];
      // First scrub tick from time zero: NextScrubTick's arithmetic with
      // now = 0.
      const Duration period = rp.scrub.interval;
      const double periods_elapsed =
          std::floor((Duration::Zero() - rp.scrub_phase).hours() / period.hours()) +
          1.0;
      Duration tick = rp.scrub_phase + period * periods_elapsed;
      if (tick <= Duration::Zero()) {
        tick += period;
      }
      if (tick < initial_deterministic_event_) {
        initial_deterministic_event_ = tick;
      }
    }
  }
}

void ReplicatedStorageSystem::Reset() { InitializeState(); }

void ReplicatedStorageSystem::Start() {
  if (started_) {
    throw std::logic_error("ReplicatedStorageSystem::Start called twice");
  }
  started_ = true;
  if (convention_ == RateConvention::kPaper) {
    ScheduleSystemFaultClocks();
  } else {
    for (int i = 0; i < replica_count_; ++i) {
      ScheduleReplicaFaults(i);
      if (record_scrub_passes_) {
        ScheduleScrubTick(i);
      }
    }
  }
  for (size_t s = 0; s < scenario_.common_mode.size(); ++s) {
    ScheduleCommonModeSource(s);
  }
}

void ReplicatedStorageSystem::OnSimEvent(uint16_t tag, int32_t a, int32_t /*b*/) {
  switch (static_cast<EventTag>(tag)) {
    case kEvVisibleFault:
      OnVisibleFault(a);
      return;
    case kEvLatentFault:
      OnLatentFault(a);
      return;
    case kEvDetect:
      OnDetect(a);
      return;
    case kEvScrubTick:
      OnScrubTick(a);
      return;
    case kEvRepairComplete:
      OnRepairComplete(a);
      return;
    case kEvSystemVisibleFault:
      OnSystemFault(FaultKind::kVisible);
      return;
    case kEvSystemLatentFault:
      OnSystemFault(FaultKind::kLatent);
      return;
    case kEvSystemDetect:
      OnSystemDetect();
      return;
    case kEvCommonMode:
      OnCommonModeEvent(static_cast<size_t>(a));
      return;
  }
  throw std::logic_error("ReplicatedStorageSystem: unknown event tag");
}

double ReplicatedStorageSystem::CorrelationMultiplier() const {
  return faulty_count_ > 0 ? 1.0 / alpha_ : 1.0;
}

Duration ReplicatedStorageSystem::DrawFaultDelay(int i, FaultKind kind) const {
  const ResolvedReplica& rp = resolved_[static_cast<size_t>(i)];
  if (rp.fault_distribution == FaultDistribution::kWeibull) {
    // Exact residual-lifetime draw, conditioned on survival to the replica's
    // current age: with S(x) = exp(-(x/scale)^k), inverting
    // u = S(x)/S(age) gives x = scale * ((age/scale)^k - ln u)^(1/k).
    // One uniform, O(1), no rejection loop.
    const double shape = rp.weibull_shape;
    const Duration scale =
        kind == FaultKind::kVisible ? rp.weibull_scale_mv : rp.weibull_scale_ml;
    const Replica& replica = replicas_[static_cast<size_t>(i)];
    const double age = (sim_->now() - replica.birth_time).hours() / scale.hours();
    if (fault_sampler_ != nullptr) {
      return fault_sampler_->DrawWeibullResidualFault(
          *rng_, shape, scale, age, kind, /*forcing_eligible=*/sim_->now().is_zero());
    }
    const double u = rng_->NextDoubleOpen();
    const double life = std::pow(std::pow(age, shape) - std::log(u), 1.0 / shape);
    const double residual_hours = (life - age) * scale.hours();
    // Guard both floating-point boundaries: life == age can round the
    // residual to zero, and (age/scale)^shape can overflow to infinity for
    // extreme age/shape combinations. Either way the hazard is astronomical
    // at this age — fail soon, matching the old rejection loop's fallback.
    if (!(residual_hours > 0.0) ||
        residual_hours == std::numeric_limits<double>::infinity()) {
      return Duration::Hours(1e-9);
    }
    return Duration::Hours(residual_hours);
  }
  const Duration mean = kind == FaultKind::kVisible ? rp.mv : rp.ml;
  if (fault_sampler_ != nullptr) {
    return fault_sampler_->DrawExponentialFault(
        *rng_, mean / CorrelationMultiplier(), kind,
        /*forcing_eligible=*/sim_->now().is_zero());
  }
  return rng_->NextExponential(mean / CorrelationMultiplier());
}

Duration ReplicatedStorageSystem::DrawRepairDuration(int i, FaultKind kind) const {
  const ResolvedReplica& rp = resolved_[static_cast<size_t>(i)];
  const Duration mean = kind == FaultKind::kVisible ? rp.mrv : rp.mrl;
  if (rp.repair_distribution == RepairDistribution::kDeterministic) {
    return mean;
  }
  return rng_->NextExponential(mean);
}

Duration ReplicatedStorageSystem::NextScrubTick(int i) const {
  const ResolvedReplica& rp = resolved_[static_cast<size_t>(i)];
  const Duration period = rp.scrub.interval;
  const Duration now = sim_->now();
  const double periods_elapsed =
      std::floor((now - rp.scrub_phase).hours() / period.hours()) + 1.0;
  Duration tick = rp.scrub_phase + period * periods_elapsed;
  if (tick <= now) {
    tick += period;  // floating-point boundary guard
  }
  return tick;
}

void ReplicatedStorageSystem::ScheduleReplicaFaults(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  const ResolvedReplica& rp = resolved_[static_cast<size_t>(i)];
  sim_->Cancel(replica.visible_event);
  sim_->Cancel(replica.latent_event);
  replica.visible_event = EventId();
  replica.latent_event = EventId();
  if (replica.state == ReplicaState::kHealthy) {
    // Both fault clocks are always cancelled and redrawn together (on a
    // fault, a repair, or a correlation change), so only the earlier of the
    // two can ever fire: draw both delays (keeping the random stream
    // unchanged) but enqueue just the winner. Visible wins ties, matching
    // the old visible-first scheduling order.
    const bool has_visible = !rp.mv.is_infinite();
    const bool has_latent = !rp.ml.is_infinite();
    const Duration visible_delay =
        has_visible ? DrawFaultDelay(i, FaultKind::kVisible) : Duration::Zero();
    const Duration latent_delay =
        has_latent ? DrawFaultDelay(i, FaultKind::kLatent) : Duration::Zero();
    if (has_visible && (!has_latent || visible_delay <= latent_delay)) {
      replica.visible_event = sim_->ScheduleAfter(visible_delay, kEvVisibleFault, i);
    } else if (has_latent) {
      replica.latent_event = sim_->ScheduleAfter(latent_delay, kEvLatentFault, i);
    }
  } else if (replica.state == ReplicaState::kLatentFaulty &&
             visible_fault_surfaces_latent_ && !rp.mv.is_infinite()) {
    const Duration delay = DrawFaultDelay(i, FaultKind::kVisible);
    replica.visible_event = sim_->ScheduleAfter(delay, kEvVisibleFault, i);
  }
}

void ReplicatedStorageSystem::RescheduleFaultsForCorrelationChange() {
  if (alpha_ >= 1.0) {
    return;  // no hazard change; exponential clocks stay valid (memoryless)
  }
  if (convention_ == RateConvention::kPaper) {
    ScheduleSystemFaultClocks();
    return;
  }
  for (int i = 0; i < replica_count_; ++i) {
    ScheduleReplicaFaults(i);
  }
}

void ReplicatedStorageSystem::ScheduleSystemFaultClocks() {
  sim_->Cancel(system_visible_event_);
  sim_->Cancel(system_latent_event_);
  system_visible_event_ = EventId();
  system_latent_event_ = EventId();
  if (lost_ || intact_count() == 0) {
    return;
  }
  // As with the per-replica clocks, the pair is always redrawn together
  // after either fires, so only the earlier one is enqueued. kPaper fleets
  // are homogeneous; replica 0 carries the system-level rates.
  const ResolvedReplica& rp = resolved_[0];
  const double mult = CorrelationMultiplier();
  const bool has_visible = !rp.mv.is_infinite();
  const bool has_latent = !rp.ml.is_infinite();
  const bool forcing_eligible = sim_->now().is_zero();
  const auto draw = [&](Duration mean, FaultKind kind) {
    return fault_sampler_ != nullptr
               ? fault_sampler_->DrawExponentialFault(*rng_, mean, kind,
                                                      forcing_eligible)
               : rng_->NextExponential(mean);
  };
  const Duration visible_delay =
      has_visible ? draw(rp.mv / mult, FaultKind::kVisible) : Duration::Zero();
  const Duration latent_delay =
      has_latent ? draw(rp.ml / mult, FaultKind::kLatent) : Duration::Zero();
  if (has_visible && (!has_latent || visible_delay <= latent_delay)) {
    system_visible_event_ = sim_->ScheduleAfter(visible_delay, kEvSystemVisibleFault);
  } else if (has_latent) {
    system_latent_event_ = sim_->ScheduleAfter(latent_delay, kEvSystemLatentFault);
  }
}

void ReplicatedStorageSystem::ScheduleDetection(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  const ResolvedReplica& rp = resolved_[static_cast<size_t>(i)];
  sim_->Cancel(replica.detect_event);
  replica.detect_event = EventId();
  switch (rp.scrub.kind) {
    case ScrubPolicy::Kind::kNone:
      return;
    case ScrubPolicy::Kind::kPeriodic: {
      if (record_scrub_passes_) {
        return;  // the scrub-tick loop performs detection
      }
      const Duration tick = NextScrubTick(i);
      replica.detect_event = sim_->ScheduleAt(tick, kEvDetect, i);
      return;
    }
    case ScrubPolicy::Kind::kExponential:
    case ScrubPolicy::Kind::kOnAccess: {
      const Duration delay = rng_->NextExponential(rp.scrub.interval);
      replica.detect_event = sim_->ScheduleAfter(delay, kEvDetect, i);
      return;
    }
  }
}

void ReplicatedStorageSystem::ScheduleScrubTick(int i) {
  const Duration tick = NextScrubTick(i);
  sim_->ScheduleAt(tick, kEvScrubTick, i);
}

void ReplicatedStorageSystem::ScheduleCommonModeSource(size_t source_index) {
  const CommonModeSource& source = scenario_.common_mode[source_index];
  const Duration delay = rng_->NextExponential(source.event_rate);
  sim_->ScheduleAfter(delay, kEvCommonMode, static_cast<int32_t>(source_index));
}

void ReplicatedStorageSystem::OnVisibleFault(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  replica.visible_event = EventId();
  if (replica.state == ReplicaState::kFaultyDetected) {
    return;  // already being rebuilt; nothing new to learn
  }
  if (replica.state == ReplicaState::kLatentFaulty) {
    if (!visible_fault_surfaces_latent_) {
      return;
    }
    // The whole-replica failure surfaces the latent fault: detection via
    // rebuild rather than audit.
    metrics_.latent_detections++;
    metrics_.detection_latency_hours.Add((sim_->now() - replica.fault_time).hours());
    sim_->Cancel(replica.detect_event);
    replica.detect_event = EventId();
    RecordTrace(TraceEventKind::kLatentDetected, i, "surfaced by visible fault");
    replica.state = ReplicaState::kFaultyDetected;
    StartRepair(i);
    return;
  }
  metrics_.visible_faults++;
  RecordTrace(TraceEventKind::kVisibleFault, i);
  InflictFault(i, FaultKind::kVisible, /*detected=*/true);
}

void ReplicatedStorageSystem::OnLatentFault(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  replica.latent_event = EventId();
  if (replica.state != ReplicaState::kHealthy) {
    return;
  }
  metrics_.latent_faults++;
  RecordTrace(TraceEventKind::kLatentFault, i);
  InflictFault(i, FaultKind::kLatent, /*detected=*/false);
}

void ReplicatedStorageSystem::OnDetect(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  replica.detect_event = EventId();
  if (replica.state != ReplicaState::kLatentFaulty) {
    return;
  }
  metrics_.latent_detections++;
  metrics_.detection_latency_hours.Add((sim_->now() - replica.fault_time).hours());
  RecordTrace(TraceEventKind::kLatentDetected, i);
  replica.state = ReplicaState::kFaultyDetected;
  StartRepair(i);
}

void ReplicatedStorageSystem::OnScrubTick(int i) {
  if (lost_) {
    return;
  }
  RecordTrace(TraceEventKind::kScrubPass, i);
  if (replicas_[static_cast<size_t>(i)].state == ReplicaState::kLatentFaulty) {
    OnDetect(i);
  }
  ScheduleScrubTick(i);
}

void ReplicatedStorageSystem::InflictFault(int i, FaultKind kind, bool detected) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  sim_->Cancel(replica.visible_event);
  sim_->Cancel(replica.latent_event);
  replica.visible_event = EventId();
  replica.latent_event = EventId();

  const int previously_faulty = faulty_count_;
  if (window_open_ && previously_faulty >= 1) {
    // Second fault inside an open window: Figure 2 bookkeeping. Only the
    // second fault is classified; the window then closes for counting.
    metrics_.second_faults[static_cast<int>(window_first_fault_)]
                          [static_cast<int>(kind)]++;
    window_open_ = false;
  } else if (previously_faulty == 0) {
    window_open_ = true;
    window_first_fault_ = kind;
    metrics_.windows_opened[static_cast<int>(kind)]++;
  }

  ++faulty_count_;
  replica.state = detected ? ReplicaState::kFaultyDetected : ReplicaState::kLatentFaulty;
  replica.current_fault = kind;
  replica.fault_time = sim_->now();

  if (replica_count_ - faulty_count_ < required_intact_) {
    lost_ = true;
    loss_time_ = sim_->now();
    RecordTrace(TraceEventKind::kDataLoss, -1);
    sim_->Stop();
    return;
  }

  if (detected) {
    StartRepair(i);
  } else {
    if (convention_ == RateConvention::kPaper) {
      if (!system_detect_event_.is_valid() &&
          resolved_[0].scrub.kind != ScrubPolicy::Kind::kNone) {
        const Duration delay = rng_->NextExponential(resolved_[0].scrub.interval);
        system_detect_event_ = sim_->ScheduleAfter(delay, kEvSystemDetect);
      }
    } else {
      ScheduleDetection(i);
      if (visible_fault_surfaces_latent_) {
        ScheduleReplicaFaults(i);  // keep a visible-fault clock running
      }
    }
  }

  if (previously_faulty == 0) {
    RescheduleFaultsForCorrelationChange();
  }
}

void ReplicatedStorageSystem::StartRepair(int i) {
  if (convention_ == RateConvention::kPaper) {
    repair_ring_[(repair_head_ + repair_queued_) % repair_ring_.size()] = i;
    ++repair_queued_;
    if (!repair_active_) {
      BeginNextSerialRepair();
    }
    return;
  }
  auto& replica = replicas_[static_cast<size_t>(i)];
  const Duration duration = DrawRepairDuration(i, replica.current_fault);
  RecordTrace(TraceEventKind::kRepairStarted, i);
  replica.repair_event = sim_->ScheduleAfter(duration, kEvRepairComplete, i);
}

void ReplicatedStorageSystem::BeginNextSerialRepair() {
  if (repair_queued_ == 0) {
    repair_active_ = false;
    return;
  }
  repair_active_ = true;
  const int i = repair_ring_[repair_head_];
  repair_head_ = (repair_head_ + 1) % repair_ring_.size();
  --repair_queued_;
  auto& replica = replicas_[static_cast<size_t>(i)];
  const Duration duration = DrawRepairDuration(i, replica.current_fault);
  RecordTrace(TraceEventKind::kRepairStarted, i);
  replica.repair_event = sim_->ScheduleAfter(duration, kEvRepairComplete, i);
}

void ReplicatedStorageSystem::OnRepairComplete(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  replica.repair_event = EventId();
  metrics_.repairs_completed++;
  metrics_.repair_duration_hours.Add((sim_->now() - replica.fault_time).hours());
  RecordTrace(TraceEventKind::kRepairCompleted, i);

  replica.state = ReplicaState::kHealthy;
  replica.birth_time = sim_->now();
  --faulty_count_;

  if (faulty_count_ == 0 && window_open_) {
    metrics_.windows_survived[static_cast<int>(window_first_fault_)]++;
    window_open_ = false;
  }

  if (convention_ == RateConvention::kPaper) {
    BeginNextSerialRepair();
    if (faulty_count_ == 0) {
      RescheduleFaultsForCorrelationChange();
    }
    return;
  }

  if (faulty_count_ == 0 && alpha_ < 1.0) {
    // Correlation relaxes: redraw every healthy replica, including this one.
    RescheduleFaultsForCorrelationChange();
  } else {
    ScheduleReplicaFaults(i);
  }
}

void ReplicatedStorageSystem::OnSystemFault(FaultKind kind) {
  if (kind == FaultKind::kVisible) {
    system_visible_event_ = EventId();
  } else {
    system_latent_event_ = EventId();
  }
  if (lost_ || intact_count() == 0) {
    return;
  }
  const int target = PickRandomHealthyReplica();
  if (kind == FaultKind::kVisible) {
    metrics_.visible_faults++;
    RecordTrace(TraceEventKind::kVisibleFault, target);
    InflictFault(target, kind, /*detected=*/true);
  } else {
    metrics_.latent_faults++;
    RecordTrace(TraceEventKind::kLatentFault, target);
    InflictFault(target, kind, /*detected=*/false);
  }
  if (!lost_) {
    ScheduleSystemFaultClocks();
  }
}

void ReplicatedStorageSystem::OnSystemDetect() {
  system_detect_event_ = EventId();
  if (lost_) {
    return;
  }
  const std::optional<int> target = OldestUndetectedLatent();
  if (!target) {
    return;
  }
  OnDetect(*target);
  // Another undetected latent fault keeps the serial audit busy.
  if (OldestUndetectedLatent().has_value()) {
    const Duration delay = rng_->NextExponential(resolved_[0].scrub.interval);
    system_detect_event_ = sim_->ScheduleAfter(delay, kEvSystemDetect);
  }
}

void ReplicatedStorageSystem::OnCommonModeEvent(size_t source_index) {
  if (lost_) {
    return;
  }
  const CommonModeSource& source = scenario_.common_mode[source_index];
  metrics_.common_mode_events++;
  RecordTrace(TraceEventKind::kCommonModeEvent, -1, source.name);
  for (int member : source.members) {
    if (lost_) {
      break;  // a hit mid-event may already have destroyed the last replica
    }
    const auto& replica = replicas_[static_cast<size_t>(member)];
    if (replica.state != ReplicaState::kHealthy) {
      continue;
    }
    if (!rng_->NextBernoulli(source.hit_probability)) {
      continue;
    }
    const bool visible = rng_->NextBernoulli(source.visible_fraction);
    metrics_.common_mode_faults++;
    if (visible) {
      metrics_.visible_faults++;
      RecordTrace(TraceEventKind::kVisibleFault, member, source.name);
      InflictFault(member, FaultKind::kVisible, /*detected=*/true);
    } else {
      metrics_.latent_faults++;
      RecordTrace(TraceEventKind::kLatentFault, member, source.name);
      InflictFault(member, FaultKind::kLatent, /*detected=*/false);
    }
  }
  if (!lost_) {
    ScheduleCommonModeSource(source_index);
  }
}

int ReplicatedStorageSystem::PickRandomHealthyReplica() {
  // Single bounded draw, then a scan for the k-th healthy replica: same
  // distribution (and same rng consumption) as materializing the healthy
  // list, without the per-call vector.
  uint64_t k = rng_->NextBounded(static_cast<uint64_t>(intact_count()));
  for (int i = 0; i < replica_count_; ++i) {
    if (replicas_[static_cast<size_t>(i)].state == ReplicaState::kHealthy) {
      if (k == 0) {
        return i;
      }
      --k;
    }
  }
  throw std::logic_error("PickRandomHealthyReplica: no healthy replica");
}

std::optional<int> ReplicatedStorageSystem::OldestUndetectedLatent() const {
  std::optional<int> best;
  for (int i = 0; i < replica_count_; ++i) {
    const auto& replica = replicas_[static_cast<size_t>(i)];
    if (replica.state != ReplicaState::kLatentFaulty) {
      continue;
    }
    if (!best ||
        replica.fault_time < replicas_[static_cast<size_t>(*best)].fault_time) {
      best = i;
    }
  }
  return best;
}

void ReplicatedStorageSystem::RecordTraceImpl(TraceEventKind kind, int replica,
                                              std::string detail) {
  trace_->Record(sim_->now(), kind, replica, std::move(detail));
}

TrialRunner::TrialRunner(const Scenario& scenario, ConfigValidation validation)
    : rng_(0), system_(&sim_, &rng_, scenario, /*trace=*/nullptr, validation) {}

TrialRunner::TrialRunner(const StorageSimConfig& config, ConfigValidation validation)
    : rng_(0), system_(&sim_, &rng_, config, /*trace=*/nullptr, validation) {}

TrialRunner::TrialRunner(const Scenario& scenario, ConfigValidation validation,
                         const FaultBias& bias)
    : rng_(0),
      system_(&sim_, &rng_, scenario, /*trace=*/nullptr, validation),
      sampler_(std::make_unique<BiasedFaultSampler>(bias)) {
  system_.set_fault_sampler(sampler_.get());
}

TrialRunner::TrialRunner(const StorageSimConfig& config, ConfigValidation validation,
                         const FaultBias& bias)
    : rng_(0),
      system_(&sim_, &rng_, config, /*trace=*/nullptr, validation),
      sampler_(std::make_unique<BiasedFaultSampler>(bias)) {
  system_.set_fault_sampler(sampler_.get());
}

TrialRunner::~TrialRunner() = default;

RunOutcome TrialRunner::Run(uint64_t seed, Duration horizon) {
  sim_.Reset();
  rng_.Reseed(seed);
  system_.Reset();
  if (sampler_ != nullptr) {
    // The forcing window is the trial horizon: for mission-loss estimation
    // the first fault is pulled into the mission itself.
    sampler_->BeginTrial(horizon);
  }
  system_.Start();
  sim_.RunUntil(horizon);
  RunOutcome outcome;
  outcome.metrics = system_.metrics();
  if (system_.lost()) {
    outcome.loss_time = system_.loss_time();
  }
  if (sampler_ != nullptr) {
    outcome.log_weight = sampler_->log_weight();
  }
  return outcome;
}

RunOutcome TrialRunner::RunCounter(uint64_t key, uint64_t trial, Duration horizon) {
  sim_.Reset();
  rng_.ReseedCounter(key, trial);
  system_.Reset();
  if (sampler_ != nullptr) {
    sampler_->BeginTrial(horizon);
  }
  system_.Start();
  sim_.RunUntil(horizon);
  RunOutcome outcome;
  outcome.metrics = system_.metrics();
  if (system_.lost()) {
    outcome.loss_time = system_.loss_time();
  }
  if (sampler_ != nullptr) {
    outcome.log_weight = sampler_->log_weight();
  }
  return outcome;
}

bool TrialRunner::PrefilterCensoredBlock(uint64_t key, int64_t begin_trial,
                                         int count, Duration horizon,
                                         uint8_t* skip) {
  if (sampler_ != nullptr || horizon.is_infinite()) {
    return false;  // biased draws / unbounded runs: every trial must execute
  }
  if (!(system_.initial_deterministic_event().hours() > horizon.hours())) {
    return false;  // a scrub tick fires inside the horizon in every trial
  }
  if (count <= 0 || count > kTrialPrefilterMaxBlock) {
    return false;
  }
  const std::vector<ReplicatedStorageSystem::InitialDrawSite>& sites =
      system_.initial_draw_sites();
  const double horizon_hours = horizon.hours();
  // Structure-of-arrays sweep: sites outer, trials inner, so each site's
  // parameters stay in registers while the counter streams advance across
  // the block. Draw j of trial t is CounterMix(key, t, j) — exactly the
  // uniform RunCounter's Start() would consume at that site — mapped through
  // the engine's delay arithmetic (DrawFaultDelay / NextExponential).
  double min_delay_hours[kTrialPrefilterMaxBlock];
  for (int i = 0; i < count; ++i) {
    min_delay_hours[i] = std::numeric_limits<double>::infinity();
  }
  uint64_t draw_index = 0;
  for (const auto& site : sites) {
    if (site.weibull) {
      for (int i = 0; i < count; ++i) {
        const uint64_t bits =
            CounterMix(key, static_cast<uint64_t>(begin_trial + i), draw_index);
        const double u = (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
        const double life =
            std::pow(site.age0_pow_shape - std::log(u), site.inv_shape);
        double delay = (life - site.age0) * site.scale_hours;
        if (!(delay > 0.0) || delay == std::numeric_limits<double>::infinity()) {
          delay = 1e-9;  // DrawFaultDelay's floating-point boundary guard
        }
        if (delay < min_delay_hours[i]) {
          min_delay_hours[i] = delay;
        }
      }
    } else {
      for (int i = 0; i < count; ++i) {
        const uint64_t bits =
            CounterMix(key, static_cast<uint64_t>(begin_trial + i), draw_index);
        const double u = (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
        const double delay = -std::log(u) * site.mean_hours;
        if (delay < min_delay_hours[i]) {
          min_delay_hours[i] = delay;
        }
      }
    }
    ++draw_index;
  }
  for (int i = 0; i < count; ++i) {
    skip[i] = min_delay_hours[i] > horizon_hours ? 1 : 0;
  }
  return true;
}

RunOutcome RunToLossOrHorizon(const Scenario& scenario, uint64_t seed,
                              Duration horizon) {
  TrialRunner runner(scenario);
  return runner.Run(seed, horizon);
}

RunOutcome RunToLossOrHorizon(const StorageSimConfig& config, uint64_t seed,
                              Duration horizon) {
  TrialRunner runner(config);
  return runner.Run(seed, horizon);
}

}  // namespace longstore
