#include "src/storage/replicated_system.h"

#include <cmath>
#include <stdexcept>

namespace longstore {

std::optional<std::string> StorageSimConfig::Validate() const {
  if (replica_count < 1) {
    return "replica_count must be >= 1";
  }
  if (required_intact < 1 || required_intact > replica_count) {
    return "required_intact must lie in [1, replica_count]";
  }
  if (!initial_age_hours.empty()) {
    if (static_cast<int>(initial_age_hours.size()) != replica_count) {
      return "initial_age_hours must have replica_count entries (or be empty)";
    }
    for (double age : initial_age_hours) {
      if (!(age >= 0.0) || !std::isfinite(age)) {
        return "initial ages must be finite and non-negative";
      }
    }
  }
  if (auto error = params.Validate()) {
    return error;
  }
  if (fault_distribution == FaultDistribution::kWeibull) {
    if (!(weibull_shape > 0.0)) {
      return "weibull_shape must be positive";
    }
    if (params.alpha < 1.0) {
      return "hazard-multiplier correlation (alpha < 1) requires exponential faults; "
             "Weibull fault clocks are age-based and cannot be rescaled memorylessly";
    }
    if (convention == RateConvention::kPaper) {
      return "Weibull faults are only supported under the physical convention";
    }
  }
  if (convention == RateConvention::kPaper) {
    if (scrub.kind == ScrubPolicy::Kind::kPeriodic) {
      return "the paper rate convention pairs with memoryless detection; use an "
             "exponential or on-access scrub policy (or the physical convention)";
    }
    if (!common_mode.empty()) {
      return "common-mode sources are only supported under the physical convention";
    }
  }
  if (scrub.kind != ScrubPolicy::Kind::kNone && !(scrub.interval.hours() > 0.0)) {
    return "scrub interval must be positive";
  }
  if (record_scrub_passes && scrub.kind != ScrubPolicy::Kind::kPeriodic) {
    return "record_scrub_passes requires a periodic scrub policy";
  }
  for (const CommonModeSource& source : common_mode) {
    if (!(source.event_rate.per_hour() > 0.0)) {
      return "common-mode source '" + source.name + "' needs a positive event rate";
    }
    if (source.hit_probability < 0.0 || source.hit_probability > 1.0 ||
        source.visible_fraction < 0.0 || source.visible_fraction > 1.0) {
      return "common-mode source '" + source.name + "' probabilities must lie in [0, 1]";
    }
    for (int member : source.members) {
      if (member < 0 || member >= replica_count) {
        return "common-mode source '" + source.name + "' has an out-of-range member";
      }
    }
  }
  return std::nullopt;
}

ReplicatedStorageSystem::ReplicatedStorageSystem(Simulator* sim, Rng* rng,
                                                 StorageSimConfig config,
                                                 TraceRecorder* trace)
    : sim_(sim), rng_(rng), config_(std::move(config)), trace_(trace) {
  if (auto error = config_.Validate()) {
    throw std::invalid_argument("StorageSimConfig: " + *error);
  }
  replicas_.resize(static_cast<size_t>(config_.replica_count));
  for (int i = 0; i < config_.replica_count; ++i) {
    auto& replica = replicas_[static_cast<size_t>(i)];
    // A pre-aged replica has a birth time in the (virtual) past.
    replica.birth_time =
        config_.initial_age_hours.empty()
            ? Duration::Zero()
            : Duration::Zero() - Duration::Hours(config_.initial_age_hours[i]);
    if (config_.scrub.kind == ScrubPolicy::Kind::kPeriodic) {
      replica.scrub_phase =
          config_.scrub_staggered
              ? config_.scrub.interval * (static_cast<double>(i) / config_.replica_count)
              : Duration::Zero();
    }
  }
}

void ReplicatedStorageSystem::Start() {
  if (started_) {
    throw std::logic_error("ReplicatedStorageSystem::Start called twice");
  }
  started_ = true;
  if (config_.convention == RateConvention::kPaper) {
    ScheduleSystemFaultClocks();
  } else {
    for (int i = 0; i < config_.replica_count; ++i) {
      ScheduleReplicaFaults(i);
      if (config_.record_scrub_passes) {
        ScheduleScrubTick(i);
      }
    }
  }
  for (size_t s = 0; s < config_.common_mode.size(); ++s) {
    ScheduleCommonModeSource(s);
  }
}

double ReplicatedStorageSystem::CorrelationMultiplier() const {
  return faulty_count_ > 0 ? 1.0 / config_.params.alpha : 1.0;
}

Duration ReplicatedStorageSystem::DrawFaultDelay(const Replica& replica,
                                                 FaultKind kind) const {
  const Duration mean =
      kind == FaultKind::kVisible ? config_.params.mv : config_.params.ml;
  if (config_.fault_distribution == StorageSimConfig::FaultDistribution::kWeibull) {
    // Age-based draw from the replica's birth; returns the residual delay.
    const double shape = config_.weibull_shape;
    const Duration scale = mean / std::tgamma(1.0 + 1.0 / shape);
    const Duration age = sim_->now() - replica.birth_time;
    // Rejection on the age: draw total lifetimes until one exceeds the
    // current age. Weibull hazards make short re-draws rare in practice.
    for (int attempt = 0; attempt < 10000; ++attempt) {
      const Duration life = rng_->NextWeibull(shape, scale);
      if (life > age) {
        return life - age;
      }
    }
    // Degenerate parameters (age beyond any plausible lifetime): fail soon.
    return Duration::Hours(1e-9);
  }
  return rng_->NextExponential(mean / CorrelationMultiplier());
}

Duration ReplicatedStorageSystem::DrawRepairDuration(FaultKind kind) const {
  const Duration mean =
      kind == FaultKind::kVisible ? config_.params.mrv : config_.params.mrl;
  if (config_.repair_distribution == StorageSimConfig::RepairDistribution::kDeterministic) {
    return mean;
  }
  return rng_->NextExponential(mean);
}

Duration ReplicatedStorageSystem::NextScrubTick(const Replica& replica) const {
  const Duration period = config_.scrub.interval;
  const Duration now = sim_->now();
  const double periods_elapsed =
      std::floor((now - replica.scrub_phase).hours() / period.hours()) + 1.0;
  Duration tick = replica.scrub_phase + period * periods_elapsed;
  if (tick <= now) {
    tick += period;  // floating-point boundary guard
  }
  return tick;
}

void ReplicatedStorageSystem::ScheduleReplicaFaults(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  sim_->Cancel(replica.visible_event);
  sim_->Cancel(replica.latent_event);
  replica.visible_event = EventId();
  replica.latent_event = EventId();
  if (replica.state == ReplicaState::kHealthy) {
    if (!config_.params.mv.is_infinite()) {
      const Duration delay = DrawFaultDelay(replica, FaultKind::kVisible);
      replica.visible_event =
          sim_->ScheduleAfter(delay, [this, i] { OnVisibleFault(i); });
    }
    if (!config_.params.ml.is_infinite()) {
      const Duration delay = DrawFaultDelay(replica, FaultKind::kLatent);
      replica.latent_event =
          sim_->ScheduleAfter(delay, [this, i] { OnLatentFault(i); });
    }
  } else if (replica.state == ReplicaState::kLatentFaulty &&
             config_.visible_fault_surfaces_latent && !config_.params.mv.is_infinite()) {
    const Duration delay = DrawFaultDelay(replica, FaultKind::kVisible);
    replica.visible_event =
        sim_->ScheduleAfter(delay, [this, i] { OnVisibleFault(i); });
  }
}

void ReplicatedStorageSystem::RescheduleFaultsForCorrelationChange() {
  if (config_.params.alpha >= 1.0) {
    return;  // no hazard change; exponential clocks stay valid (memoryless)
  }
  if (config_.convention == RateConvention::kPaper) {
    ScheduleSystemFaultClocks();
    return;
  }
  for (int i = 0; i < config_.replica_count; ++i) {
    ScheduleReplicaFaults(i);
  }
}

void ReplicatedStorageSystem::ScheduleSystemFaultClocks() {
  sim_->Cancel(system_visible_event_);
  sim_->Cancel(system_latent_event_);
  system_visible_event_ = EventId();
  system_latent_event_ = EventId();
  if (lost_ || intact_count() == 0) {
    return;
  }
  const double mult = CorrelationMultiplier();
  if (!config_.params.mv.is_infinite()) {
    const Duration delay = rng_->NextExponential(config_.params.mv / mult);
    system_visible_event_ =
        sim_->ScheduleAfter(delay, [this] { OnSystemFault(FaultKind::kVisible); });
  }
  if (!config_.params.ml.is_infinite()) {
    const Duration delay = rng_->NextExponential(config_.params.ml / mult);
    system_latent_event_ =
        sim_->ScheduleAfter(delay, [this] { OnSystemFault(FaultKind::kLatent); });
  }
}

void ReplicatedStorageSystem::ScheduleDetection(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  sim_->Cancel(replica.detect_event);
  replica.detect_event = EventId();
  switch (config_.scrub.kind) {
    case ScrubPolicy::Kind::kNone:
      return;
    case ScrubPolicy::Kind::kPeriodic: {
      if (config_.record_scrub_passes) {
        return;  // the scrub-tick loop performs detection
      }
      const Duration tick = NextScrubTick(replica);
      replica.detect_event = sim_->ScheduleAt(tick, [this, i] { OnDetect(i); });
      return;
    }
    case ScrubPolicy::Kind::kExponential:
    case ScrubPolicy::Kind::kOnAccess: {
      const Duration delay = rng_->NextExponential(config_.scrub.interval);
      replica.detect_event = sim_->ScheduleAfter(delay, [this, i] { OnDetect(i); });
      return;
    }
  }
}

void ReplicatedStorageSystem::ScheduleScrubTick(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  const Duration tick = NextScrubTick(replica);
  sim_->ScheduleAt(tick, [this, i] { OnScrubTick(i); });
}

void ReplicatedStorageSystem::ScheduleCommonModeSource(size_t source_index) {
  const CommonModeSource& source = config_.common_mode[source_index];
  const Duration delay = rng_->NextExponential(source.event_rate);
  sim_->ScheduleAfter(delay, [this, source_index] { OnCommonModeEvent(source_index); });
}

void ReplicatedStorageSystem::OnVisibleFault(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  replica.visible_event = EventId();
  if (replica.state == ReplicaState::kFaultyDetected) {
    return;  // already being rebuilt; nothing new to learn
  }
  if (replica.state == ReplicaState::kLatentFaulty) {
    if (!config_.visible_fault_surfaces_latent) {
      return;
    }
    // The whole-replica failure surfaces the latent fault: detection via
    // rebuild rather than audit.
    metrics_.latent_detections++;
    metrics_.detection_latency_hours.Add((sim_->now() - replica.fault_time).hours());
    sim_->Cancel(replica.detect_event);
    replica.detect_event = EventId();
    RecordTrace(TraceEventKind::kLatentDetected, i, "surfaced by visible fault");
    replica.state = ReplicaState::kFaultyDetected;
    StartRepair(i);
    return;
  }
  metrics_.visible_faults++;
  RecordTrace(TraceEventKind::kVisibleFault, i);
  InflictFault(i, FaultKind::kVisible, /*detected=*/true);
}

void ReplicatedStorageSystem::OnLatentFault(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  replica.latent_event = EventId();
  if (replica.state != ReplicaState::kHealthy) {
    return;
  }
  metrics_.latent_faults++;
  RecordTrace(TraceEventKind::kLatentFault, i);
  InflictFault(i, FaultKind::kLatent, /*detected=*/false);
}

void ReplicatedStorageSystem::OnDetect(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  replica.detect_event = EventId();
  if (replica.state != ReplicaState::kLatentFaulty) {
    return;
  }
  metrics_.latent_detections++;
  metrics_.detection_latency_hours.Add((sim_->now() - replica.fault_time).hours());
  RecordTrace(TraceEventKind::kLatentDetected, i);
  replica.state = ReplicaState::kFaultyDetected;
  StartRepair(i);
}

void ReplicatedStorageSystem::OnScrubTick(int i) {
  if (lost_) {
    return;
  }
  RecordTrace(TraceEventKind::kScrubPass, i);
  if (replicas_[static_cast<size_t>(i)].state == ReplicaState::kLatentFaulty) {
    OnDetect(i);
  }
  ScheduleScrubTick(i);
}

void ReplicatedStorageSystem::InflictFault(int i, FaultKind kind, bool detected) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  sim_->Cancel(replica.visible_event);
  sim_->Cancel(replica.latent_event);
  replica.visible_event = EventId();
  replica.latent_event = EventId();

  const int previously_faulty = faulty_count_;
  if (window_open_ && previously_faulty >= 1) {
    // Second fault inside an open window: Figure 2 bookkeeping. Only the
    // second fault is classified; the window then closes for counting.
    metrics_.second_faults[static_cast<int>(window_first_fault_)]
                          [static_cast<int>(kind)]++;
    window_open_ = false;
  } else if (previously_faulty == 0) {
    window_open_ = true;
    window_first_fault_ = kind;
    metrics_.windows_opened[static_cast<int>(kind)]++;
  }

  ++faulty_count_;
  replica.state = detected ? ReplicaState::kFaultyDetected : ReplicaState::kLatentFaulty;
  replica.current_fault = kind;
  replica.fault_time = sim_->now();

  if (config_.replica_count - faulty_count_ < config_.required_intact) {
    lost_ = true;
    loss_time_ = sim_->now();
    RecordTrace(TraceEventKind::kDataLoss, -1);
    sim_->Stop();
    return;
  }

  if (detected) {
    StartRepair(i);
  } else {
    if (config_.convention == RateConvention::kPaper) {
      if (!system_detect_event_.is_valid() &&
          config_.scrub.kind != ScrubPolicy::Kind::kNone) {
        const Duration delay = rng_->NextExponential(config_.scrub.interval);
        system_detect_event_ = sim_->ScheduleAfter(delay, [this] { OnSystemDetect(); });
      }
    } else {
      ScheduleDetection(i);
      if (config_.visible_fault_surfaces_latent) {
        ScheduleReplicaFaults(i);  // keep a visible-fault clock running
      }
    }
  }

  if (previously_faulty == 0) {
    RescheduleFaultsForCorrelationChange();
  }
}

void ReplicatedStorageSystem::StartRepair(int i) {
  if (config_.convention == RateConvention::kPaper) {
    repair_queue_.push_back(i);
    if (!repair_active_) {
      BeginNextSerialRepair();
    }
    return;
  }
  auto& replica = replicas_[static_cast<size_t>(i)];
  const Duration duration = DrawRepairDuration(replica.current_fault);
  RecordTrace(TraceEventKind::kRepairStarted, i);
  replica.repair_event =
      sim_->ScheduleAfter(duration, [this, i] { OnRepairComplete(i); });
}

void ReplicatedStorageSystem::BeginNextSerialRepair() {
  if (repair_queue_.empty()) {
    repair_active_ = false;
    return;
  }
  repair_active_ = true;
  const int i = repair_queue_.front();
  repair_queue_.erase(repair_queue_.begin());
  auto& replica = replicas_[static_cast<size_t>(i)];
  const Duration duration = DrawRepairDuration(replica.current_fault);
  RecordTrace(TraceEventKind::kRepairStarted, i);
  replica.repair_event =
      sim_->ScheduleAfter(duration, [this, i] { OnRepairComplete(i); });
}

void ReplicatedStorageSystem::OnRepairComplete(int i) {
  auto& replica = replicas_[static_cast<size_t>(i)];
  replica.repair_event = EventId();
  metrics_.repairs_completed++;
  metrics_.repair_duration_hours.Add((sim_->now() - replica.fault_time).hours());
  RecordTrace(TraceEventKind::kRepairCompleted, i);

  replica.state = ReplicaState::kHealthy;
  replica.birth_time = sim_->now();
  --faulty_count_;

  if (faulty_count_ == 0 && window_open_) {
    metrics_.windows_survived[static_cast<int>(window_first_fault_)]++;
    window_open_ = false;
  }

  if (config_.convention == RateConvention::kPaper) {
    BeginNextSerialRepair();
    if (faulty_count_ == 0) {
      RescheduleFaultsForCorrelationChange();
    }
    return;
  }

  if (faulty_count_ == 0 && config_.params.alpha < 1.0) {
    // Correlation relaxes: redraw every healthy replica, including this one.
    RescheduleFaultsForCorrelationChange();
  } else {
    ScheduleReplicaFaults(i);
  }
}

void ReplicatedStorageSystem::OnSystemFault(FaultKind kind) {
  if (kind == FaultKind::kVisible) {
    system_visible_event_ = EventId();
  } else {
    system_latent_event_ = EventId();
  }
  if (lost_ || intact_count() == 0) {
    return;
  }
  const int target = PickRandomHealthyReplica();
  if (kind == FaultKind::kVisible) {
    metrics_.visible_faults++;
    RecordTrace(TraceEventKind::kVisibleFault, target);
    InflictFault(target, kind, /*detected=*/true);
  } else {
    metrics_.latent_faults++;
    RecordTrace(TraceEventKind::kLatentFault, target);
    InflictFault(target, kind, /*detected=*/false);
  }
  if (!lost_) {
    ScheduleSystemFaultClocks();
  }
}

void ReplicatedStorageSystem::OnSystemDetect() {
  system_detect_event_ = EventId();
  if (lost_) {
    return;
  }
  const std::optional<int> target = OldestUndetectedLatent();
  if (!target) {
    return;
  }
  OnDetect(*target);
  // Another undetected latent fault keeps the serial audit busy.
  if (OldestUndetectedLatent().has_value()) {
    const Duration delay = rng_->NextExponential(config_.scrub.interval);
    system_detect_event_ = sim_->ScheduleAfter(delay, [this] { OnSystemDetect(); });
  }
}

void ReplicatedStorageSystem::OnCommonModeEvent(size_t source_index) {
  if (lost_) {
    return;
  }
  const CommonModeSource& source = config_.common_mode[source_index];
  metrics_.common_mode_events++;
  RecordTrace(TraceEventKind::kCommonModeEvent, -1, source.name);
  for (int member : source.members) {
    if (lost_) {
      break;  // a hit mid-event may already have destroyed the last replica
    }
    const auto& replica = replicas_[static_cast<size_t>(member)];
    if (replica.state != ReplicaState::kHealthy) {
      continue;
    }
    if (!rng_->NextBernoulli(source.hit_probability)) {
      continue;
    }
    const bool visible = rng_->NextBernoulli(source.visible_fraction);
    metrics_.common_mode_faults++;
    if (visible) {
      metrics_.visible_faults++;
      RecordTrace(TraceEventKind::kVisibleFault, member, source.name);
      InflictFault(member, FaultKind::kVisible, /*detected=*/true);
    } else {
      metrics_.latent_faults++;
      RecordTrace(TraceEventKind::kLatentFault, member, source.name);
      InflictFault(member, FaultKind::kLatent, /*detected=*/false);
    }
  }
  if (!lost_) {
    ScheduleCommonModeSource(source_index);
  }
}

int ReplicatedStorageSystem::PickRandomHealthyReplica() {
  std::vector<int> healthy;
  healthy.reserve(replicas_.size());
  for (int i = 0; i < config_.replica_count; ++i) {
    if (replicas_[static_cast<size_t>(i)].state == ReplicaState::kHealthy) {
      healthy.push_back(i);
    }
  }
  return healthy[static_cast<size_t>(rng_->NextBounded(healthy.size()))];
}

std::optional<int> ReplicatedStorageSystem::OldestUndetectedLatent() const {
  std::optional<int> best;
  for (int i = 0; i < config_.replica_count; ++i) {
    const auto& replica = replicas_[static_cast<size_t>(i)];
    if (replica.state != ReplicaState::kLatentFaulty) {
      continue;
    }
    if (!best ||
        replica.fault_time < replicas_[static_cast<size_t>(*best)].fault_time) {
      best = i;
    }
  }
  return best;
}

void ReplicatedStorageSystem::RecordTrace(TraceEventKind kind, int replica,
                                          std::string detail) {
  if (trace_ != nullptr) {
    trace_->Record(sim_->now(), kind, replica, std::move(detail));
  }
}

RunOutcome RunToLossOrHorizon(const StorageSimConfig& config, uint64_t seed,
                              Duration horizon) {
  Simulator sim;
  Rng rng(seed);
  ReplicatedStorageSystem system(&sim, &rng, config);
  system.Start();
  sim.RunUntil(horizon);
  RunOutcome outcome;
  outcome.metrics = system.metrics();
  if (system.lost()) {
    outcome.loss_time = system.loss_time();
  }
  return outcome;
}

}  // namespace longstore
