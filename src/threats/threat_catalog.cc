#include "src/threats/threat_catalog.h"

#include <stdexcept>

namespace longstore {

const std::vector<ThreatInfo>& ThreatCatalog() {
  static const std::vector<ThreatInfo> catalog = {
      {ThreatClass::kLargeScaleDisaster, "large-scale disaster",
       "floods, fires, earthquakes, acts of war; manifests through media, hardware "
       "and organizational faults at once",
       "9/11 destroyed a data center; the cross-river failover site proved "
       "insufficiently independent",
       /*typically_latent=*/false, /*typically_correlated=*/true},
      {ThreatClass::kHumanError, "human error",
       "operators accidentally delete or overwrite content, mishandle media, or break "
       "the infrastructure the archive depends on",
       "tapes lost in transit; accidental deletion discovered only when the material "
       "is needed",
       /*typically_latent=*/true, /*typically_correlated=*/true},
      {ThreatClass::kComponentFault, "component fault",
       "hardware, software, firmware, network and third-party services all fail; "
       "transfers may deliver corrupted content",
       "external license servers or URL resolvers vanish decades before the data "
       "they gate",
       /*typically_latent=*/true, /*typically_correlated=*/true},
      {ThreatClass::kMediaFault, "media fault",
       "bit rot, unreadable sectors, misplaced sector writes; sudden bulk loss from "
       "crashes",
       "CD-ROMs sold as good for 75-100 years often unreadable after 2-5",
       /*typically_latent=*/true, /*typically_correlated=*/false},
      {ThreatClass::kMediaHardwareObsolescence, "media/hardware obsolescence",
       "media remain theoretically readable but no suitable reader can be found or "
       "replaced after a fault",
       "9-track tape, 12-inch laser discs, the disappearing floppy drive",
       /*typically_latent=*/true, /*typically_correlated=*/true},
      {ThreatClass::kSoftwareFormatObsolescence, "software/format obsolescence",
       "bits stay accessible but can no longer be interpreted; proprietary formats "
       "die with their vendors",
       "undocumented camera RAW formats orphaned when support ends",
       /*typically_latent=*/true, /*typically_correlated=*/true},
      {ThreatClass::kLossOfContext, "loss of context",
       "metadata, provenance, inter-object relationships or decryption keys are lost, "
       "leaving intact bits unintelligible",
       "encrypted archives whose keys leak, break, or disappear over decades",
       /*typically_latent=*/true, /*typically_correlated=*/true},
      {ThreatClass::kAttack, "attack",
       "destruction, censorship, modification, theft and service disruption; slow "
       "subversion rather than short intense incidents; insiders included",
       "\"sanitization\" of government websites; flash worms hitting every replica "
       "sharing a vulnerability",
       /*typically_latent=*/true, /*typically_correlated=*/true},
      {ThreatClass::kOrganizationalFault, "organizational fault",
       "the hosting organization dies, changes mission, or simply errs; assets need "
       "an exit strategy to a successor",
       "a research lab's undocumented tape archive became unreadable in practice; "
       "Ofoto deleted a customer's photos for a lapsed purchase",
       /*typically_latent=*/true, /*typically_correlated=*/true},
      {ThreatClass::kEconomicFault, "economic fault",
       "budgets for power, cooling, bandwidth, administration and renewal vary, "
       "possibly to zero; digital assets are far more interruption-sensitive than "
       "paper",
       "libraries subscribing to fewer serials; collections put online once and "
       "never maintained",
       /*typically_latent=*/true, /*typically_correlated=*/true},
  };
  return catalog;
}

const ThreatInfo& LookupThreat(ThreatClass threat) {
  for (const ThreatInfo& info : ThreatCatalog()) {
    if (info.threat == threat) {
      return info;
    }
  }
  throw std::invalid_argument("LookupThreat: unknown threat class");
}

std::string_view ThreatClassName(ThreatClass threat) { return LookupThreat(threat).name; }

}  // namespace longstore
