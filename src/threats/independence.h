// Quantifying replica independence (§4.2, §6.5).
//
// Each replica carries an attribute per independence dimension (geography,
// administration, hardware batch, software stack, organization, power/
// cooling, network, third-party services). Two mechanisms translate shared
// attributes into correlated faults:
//
//  1. An effective correlation factor α for the analytic model: every shared
//     dimension multiplies a per-dimension factor < 1 into the pairwise α
//     (more sharing -> smaller α -> faster second faults).
//  2. Generative common-mode sources for the simulator: every group of
//     replicas sharing a dimension value gets a Poisson shared-risk event
//     stream (the mechanism behind Talagala's observation that one power
//     outage accounted for 22% of machine restarts).

#ifndef LONGSTORE_SRC_THREATS_INDEPENDENCE_H_
#define LONGSTORE_SRC_THREATS_INDEPENDENCE_H_

#include <map>
#include <string>
#include <vector>

#include "src/storage/config.h"
#include "src/util/units.h"

namespace longstore {

enum class IndependenceDimension {
  kGeography,
  kAdministration,
  kHardwareBatch,
  kSoftwareStack,
  kOrganization,
  kPowerCooling,
  kNetwork,
  kThirdPartyService,
};

std::string_view IndependenceDimensionName(IndependenceDimension dimension);

const std::vector<IndependenceDimension>& AllIndependenceDimensions();

// Where a replica lives along each dimension. Missing dimensions are treated
// as unique (fully independent in that dimension).
struct ReplicaProfile {
  std::map<IndependenceDimension, std::string> attributes;

  ReplicaProfile& Set(IndependenceDimension dimension, std::string value) {
    attributes[dimension] = std::move(value);
    return *this;
  }
  bool SharesWith(const ReplicaProfile& other, IndependenceDimension dimension) const;
};

// Per-dimension correlation contribution when two replicas share that
// dimension's attribute. Values in (0, 1]; smaller = stronger coupling.
struct CorrelationFactors {
  std::map<IndependenceDimension, double> shared_factor;

  // Defaults reflect the paper's emphasis: shared administration and shared
  // power/cooling are the strongest couplings (§4.2's human-error and
  // Talagala examples), shared third-party services the weakest.
  static CorrelationFactors Defaults();
};

// α for one replica pair: the product of factors over shared dimensions
// (1.0 when nothing is shared).
double PairwiseAlpha(const ReplicaProfile& a, const ReplicaProfile& b,
                     const CorrelationFactors& factors);

// System-level α for the analytic model. The most-correlated pair dominates
// double-fault risk, so the minimum pairwise α is the conservative choice.
double MinPairwiseAlpha(const std::vector<ReplicaProfile>& profiles,
                        const CorrelationFactors& factors);
double MeanPairwiseAlpha(const std::vector<ReplicaProfile>& profiles,
                         const CorrelationFactors& factors);

// Generative shared-risk parameters per dimension.
struct SharedRiskRates {
  struct Entry {
    Rate event_rate = Rate::PerYear(0.0);  // events per shared group
    double hit_probability = 1.0;          // chance each member is affected
    double visible_fraction = 1.0;         // visible vs latent fault on hit
  };
  std::map<IndependenceDimension, Entry> entries;

  static SharedRiskRates Defaults();
};

// Builds one CommonModeSource per (dimension, attribute value) group with at
// least two members. Replica i uses profiles[i].
std::vector<CommonModeSource> BuildCommonModeSources(
    const std::vector<ReplicaProfile>& profiles, const SharedRiskRates& rates);

// Canonical profiles used by benches and examples.
//
// All replicas in one machine room, one admin, one hardware batch.
std::vector<ReplicaProfile> SingleSiteProfiles(int replica_count);
// Distinct sites/admins/batches/software/organizations: the British
// Library-style fully diverse deployment (§6.5).
std::vector<ReplicaProfile> FullyDiverseProfiles(int replica_count);
// Distinct sites but one administrative domain and one software stack — the
// common "geographically replicated, centrally operated" design.
std::vector<ReplicaProfile> GeoReplicatedSameAdminProfiles(int replica_count);

}  // namespace longstore

#endif  // LONGSTORE_SRC_THREATS_INDEPENDENCE_H_
