// The paper's §3 threat taxonomy as a queryable catalog.
//
// Each threat is classified along the two axes the model cares about
// (§4.1/§4.2): does it typically manifest as a *latent* fault, and does it
// typically strike *correlated* across replicas? The catalog drives the
// example applications and documents how non-media threats map onto the
// model's MV/ML/α knobs.

#ifndef LONGSTORE_SRC_THREATS_THREAT_CATALOG_H_
#define LONGSTORE_SRC_THREATS_THREAT_CATALOG_H_

#include <string_view>
#include <vector>

namespace longstore {

enum class ThreatClass {
  kLargeScaleDisaster,
  kHumanError,
  kComponentFault,
  kMediaFault,
  kMediaHardwareObsolescence,
  kSoftwareFormatObsolescence,
  kLossOfContext,
  kAttack,
  kOrganizationalFault,
  kEconomicFault,
};

struct ThreatInfo {
  ThreatClass threat;
  std::string_view name;
  std::string_view description;      // condensed from §3
  std::string_view example;          // the paper's real-world example
  bool typically_latent;             // §4.1 list
  bool typically_correlated;         // §4.2 list
};

// All ten §3 threat classes, in the paper's order.
const std::vector<ThreatInfo>& ThreatCatalog();

const ThreatInfo& LookupThreat(ThreatClass threat);

std::string_view ThreatClassName(ThreatClass threat);

}  // namespace longstore

#endif  // LONGSTORE_SRC_THREATS_THREAT_CATALOG_H_
