#include "src/threats/threat_model.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace longstore {
namespace {

double RateOf(Duration interval) {
  return interval.is_infinite() ? 0.0 : 1.0 / interval.hours();
}

}  // namespace

std::string ThreatContribution::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: visible %s, latent %s, detect %s, repair %s",
                std::string(ThreatClassName(threat)).c_str(),
                visible_interval.ToString().c_str(),
                latent_interval.ToString().c_str(),
                detection_interval.ToString().c_str(), repair_time.ToString().c_str());
  return buf;
}

std::optional<std::string> ThreatProfile::Validate() const {
  for (const ThreatContribution& c : contributions) {
    const std::string threat_name(ThreatClassName(c.threat));
    if (!(c.visible_interval.hours() > 0.0) || !(c.latent_interval.hours() > 0.0)) {
      return threat_name + ": fault intervals must be positive";
    }
    if (!(c.detection_interval.hours() > 0.0)) {
      return threat_name + ": detection interval must be positive";
    }
    if (c.repair_time.is_negative() || c.repair_time.is_infinite()) {
      return threat_name + ": repair time must be finite and non-negative";
    }
  }
  return std::nullopt;
}

FaultParams CombineThreats(const ThreatProfile& profile, double alpha) {
  if (auto error = profile.Validate()) {
    throw std::invalid_argument("ThreatProfile: " + *error);
  }
  double visible_rate = 0.0;
  double latent_rate = 0.0;
  double visible_repair_weighted = 0.0;
  double latent_repair_weighted = 0.0;
  double detection_weighted = 0.0;
  bool undetectable_latent = false;

  for (const ThreatContribution& c : profile.contributions) {
    const double v = RateOf(c.visible_interval);
    const double l = RateOf(c.latent_interval);
    visible_rate += v;
    latent_rate += l;
    visible_repair_weighted += v * c.repair_time.hours();
    latent_repair_weighted += l * c.repair_time.hours();
    if (l > 0.0) {
      if (c.detection_interval.is_infinite()) {
        // An undetectable latent threat dominates MDL entirely (§5.2: such
        // faults "will remain the main vulnerability for the stored data").
        undetectable_latent = true;
      } else {
        detection_weighted += l * c.detection_interval.hours();
      }
    }
  }

  FaultParams p;
  p.mv = visible_rate > 0.0 ? Duration::Hours(1.0 / visible_rate) : Duration::Infinite();
  p.ml = latent_rate > 0.0 ? Duration::Hours(1.0 / latent_rate) : Duration::Infinite();
  p.mrv = visible_rate > 0.0 ? Duration::Hours(visible_repair_weighted / visible_rate)
                             : Duration::Zero();
  p.mrl = latent_rate > 0.0 ? Duration::Hours(latent_repair_weighted / latent_rate)
                            : Duration::Zero();
  p.mdl = (undetectable_latent || latent_rate == 0.0)
              ? Duration::Infinite()
              : Duration::Hours(detection_weighted / latent_rate);
  p.alpha = alpha;
  return p;
}

ThreatProfile MediaOnlyProfile(Duration audit_interval) {
  ThreatProfile profile;
  profile.name = "media faults only (Cheetah rates)";
  ThreatContribution media;
  media.threat = ThreatClass::kMediaFault;
  media.visible_interval = Duration::Hours(1.4e6);   // whole-drive faults
  media.latent_interval = Duration::Hours(2.8e5);    // bit rot, 5x (Schwarz)
  media.detection_interval = audit_interval / 2.0;   // periodic scrub
  media.repair_time = Duration::Minutes(20.0);
  profile.contributions.push_back(media);
  return profile;
}

ThreatProfile EndToEndArchiveProfile(Duration audit_interval,
                                     Duration format_sweep_interval) {
  ThreatProfile profile = MediaOnlyProfile(audit_interval);
  profile.name = "end-to-end archive";

  // Human error (§3): an operator deletes or overwrites content roughly once
  // a decade per replica; the mistake is silent until audited, and restoring
  // from a peer takes a working day.
  ThreatContribution human;
  human.threat = ThreatClass::kHumanError;
  human.latent_interval = Duration::Years(10.0);
  human.detection_interval = audit_interval / 2.0;
  human.repair_time = Duration::Hours(8.0);
  profile.contributions.push_back(human);

  // Component faults (§3): controller/firmware/dependency failures surface
  // immediately but take a day to diagnose and replace.
  ThreatContribution component;
  component.threat = ThreatClass::kComponentFault;
  component.visible_interval = Duration::Years(3.0);
  component.repair_time = Duration::Hours(24.0);
  profile.contributions.push_back(component);

  // Format obsolescence (§3): a replica's content drifts into an endangered
  // format on generational timescales; only a dedicated format sweep detects
  // it, and migration is a week of work.
  ThreatContribution format;
  format.threat = ThreatClass::kSoftwareFormatObsolescence;
  format.latent_interval = Duration::Years(30.0);
  format.detection_interval = format_sweep_interval / 2.0;
  format.repair_time = Duration::Days(7.0);
  profile.contributions.push_back(format);

  // Slow attack (§3): censorship or corruption that checksum audits can
  // catch, expected once a century per replica.
  ThreatContribution attack;
  attack.threat = ThreatClass::kAttack;
  attack.latent_interval = Duration::Years(100.0);
  attack.detection_interval = audit_interval / 2.0;
  attack.repair_time = Duration::Hours(8.0);
  profile.contributions.push_back(attack);

  return profile;
}

}  // namespace longstore
