// Mapping the §3 threat taxonomy onto the §5 model's parameters.
//
// The paper stresses that MV/ML/MDL are not merely media properties: "beyond
// media faults, there are many types of latent faults caused by threats in
// §3" (§4.1), and the §6 strategies "are also applicable to other kinds of
// faults". This module makes that composition executable: each threat class
// contributes a visible and/or latent fault process; independent memoryless
// processes combine by adding rates; the slowest applicable detection process
// bounds MDL. The result is an end-to-end FaultParams an archivist can feed
// into the same closed forms, CTMC and simulator as plain media faults.

#ifndef LONGSTORE_SRC_THREATS_THREAT_MODEL_H_
#define LONGSTORE_SRC_THREATS_THREAT_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "src/model/fault_params.h"
#include "src/threats/threat_catalog.h"
#include "src/util/units.h"

namespace longstore {

// One threat's contribution to a replica's fault processes.
struct ThreatContribution {
  ThreatClass threat = ThreatClass::kMediaFault;
  // Mean time between events of this threat striking one replica; infinite
  // rates are allowed (threat not applicable).
  Duration visible_interval = Duration::Infinite();
  Duration latent_interval = Duration::Infinite();
  // Mean time for this threat's latent damage to be *detectable* by the
  // archive's audit process (e.g. checksum scrubbing detects bit rot within
  // the audit interval, but detecting format obsolescence requires a format
  // sweep, and a censorship attack may only surface on scholarly access).
  Duration detection_interval = Duration::Infinite();
  // Mean time to repair damage from this threat once detected.
  Duration repair_time = Duration::Zero();

  std::string ToString() const;
};

// A named bundle of contributions (an archive's threat profile).
struct ThreatProfile {
  std::string name;
  std::vector<ThreatContribution> contributions;

  // Returns an error if any contribution is malformed (negative times,
  // zero intervals).
  std::optional<std::string> Validate() const;
};

// Combines independent memoryless processes:
//  - visible rate  = Σ 1/visible_interval_i
//  - latent rate   = Σ 1/latent_interval_i
//  - MDL           = latent-rate-weighted mean of the detection intervals
//    (each latent fault carries its own threat's detection latency; the
//    expectation over fault causes is the rate-weighted mean)
//  - MRV / MRL     = rate-weighted means of the repair times
//  - α             = `alpha` (supplied by the deployment's independence
//    profile; see src/threats/independence.h)
FaultParams CombineThreats(const ThreatProfile& profile, double alpha);

// Reference profiles used by examples and tests.
//
// Media faults only, at the paper's Cheetah rates with a given audit
// interval: reproduces FaultParams::PaperCheetahExample + scrubbing.
ThreatProfile MediaOnlyProfile(Duration audit_interval);

// A realistic end-to-end archive profile: media faults + human error +
// component faults + slow threats (format obsolescence, attack,
// organizational drift), each with §4.1-appropriate visibility and detection
// latencies. Rates are order-of-magnitude estimates documented inline; the
// point is composition, not calibration.
ThreatProfile EndToEndArchiveProfile(Duration audit_interval,
                                     Duration format_sweep_interval);

}  // namespace longstore

#endif  // LONGSTORE_SRC_THREATS_THREAT_MODEL_H_
