#include "src/threats/independence.h"

#include <algorithm>

namespace longstore {

std::string_view IndependenceDimensionName(IndependenceDimension dimension) {
  switch (dimension) {
    case IndependenceDimension::kGeography:
      return "geography";
    case IndependenceDimension::kAdministration:
      return "administration";
    case IndependenceDimension::kHardwareBatch:
      return "hardware batch";
    case IndependenceDimension::kSoftwareStack:
      return "software stack";
    case IndependenceDimension::kOrganization:
      return "organization";
    case IndependenceDimension::kPowerCooling:
      return "power/cooling";
    case IndependenceDimension::kNetwork:
      return "network";
    case IndependenceDimension::kThirdPartyService:
      return "third-party service";
  }
  return "?";
}

const std::vector<IndependenceDimension>& AllIndependenceDimensions() {
  static const std::vector<IndependenceDimension> dimensions = {
      IndependenceDimension::kGeography,        IndependenceDimension::kAdministration,
      IndependenceDimension::kHardwareBatch,    IndependenceDimension::kSoftwareStack,
      IndependenceDimension::kOrganization,     IndependenceDimension::kPowerCooling,
      IndependenceDimension::kNetwork,          IndependenceDimension::kThirdPartyService,
  };
  return dimensions;
}

bool ReplicaProfile::SharesWith(const ReplicaProfile& other,
                                IndependenceDimension dimension) const {
  const auto mine = attributes.find(dimension);
  if (mine == attributes.end()) {
    return false;
  }
  const auto theirs = other.attributes.find(dimension);
  return theirs != other.attributes.end() && mine->second == theirs->second;
}

CorrelationFactors CorrelationFactors::Defaults() {
  CorrelationFactors f;
  f.shared_factor = {
      {IndependenceDimension::kGeography, 0.5},
      {IndependenceDimension::kAdministration, 0.3},
      {IndependenceDimension::kHardwareBatch, 0.6},
      {IndependenceDimension::kSoftwareStack, 0.5},
      {IndependenceDimension::kOrganization, 0.6},
      {IndependenceDimension::kPowerCooling, 0.3},
      {IndependenceDimension::kNetwork, 0.8},
      {IndependenceDimension::kThirdPartyService, 0.9},
  };
  return f;
}

double PairwiseAlpha(const ReplicaProfile& a, const ReplicaProfile& b,
                     const CorrelationFactors& factors) {
  double alpha = 1.0;
  for (const auto& [dimension, factor] : factors.shared_factor) {
    if (a.SharesWith(b, dimension)) {
      alpha *= factor;
    }
  }
  return alpha;
}

double MinPairwiseAlpha(const std::vector<ReplicaProfile>& profiles,
                        const CorrelationFactors& factors) {
  double alpha = 1.0;
  for (size_t i = 0; i < profiles.size(); ++i) {
    for (size_t j = i + 1; j < profiles.size(); ++j) {
      alpha = std::min(alpha, PairwiseAlpha(profiles[i], profiles[j], factors));
    }
  }
  return alpha;
}

double MeanPairwiseAlpha(const std::vector<ReplicaProfile>& profiles,
                         const CorrelationFactors& factors) {
  double sum = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < profiles.size(); ++i) {
    for (size_t j = i + 1; j < profiles.size(); ++j) {
      sum += PairwiseAlpha(profiles[i], profiles[j], factors);
      ++pairs;
    }
  }
  return pairs == 0 ? 1.0 : sum / pairs;
}

SharedRiskRates SharedRiskRates::Defaults() {
  SharedRiskRates r;
  // Rates are per shared group, calibrated coarsely to the §3/§4.2 evidence:
  // power events are frequent but mostly transient (high rate, moderate hit
  // probability); site disasters are rare but devastating; shared-admin
  // errors occasionally delete data silently at every replica at once.
  r.entries = {
      {IndependenceDimension::kPowerCooling,
       {Rate::PerYear(2.0), /*hit=*/0.6, /*visible=*/1.0}},
      {IndependenceDimension::kGeography,
       {Rate::PerYear(0.01), /*hit=*/0.9, /*visible=*/1.0}},
      {IndependenceDimension::kAdministration,
       {Rate::PerYear(0.2), /*hit=*/0.5, /*visible=*/0.3}},
      {IndependenceDimension::kSoftwareStack,
       {Rate::PerYear(0.1), /*hit=*/0.8, /*visible=*/0.5}},
      {IndependenceDimension::kHardwareBatch,
       {Rate::PerYear(0.05), /*hit=*/0.5, /*visible=*/0.7}},
      {IndependenceDimension::kOrganization,
       {Rate::PerYear(0.02), /*hit=*/1.0, /*visible=*/0.5}},
      {IndependenceDimension::kNetwork,
       {Rate::PerYear(0.5), /*hit=*/0.3, /*visible=*/1.0}},
      {IndependenceDimension::kThirdPartyService,
       {Rate::PerYear(0.05), /*hit=*/0.7, /*visible=*/0.2}},
  };
  return r;
}

std::vector<CommonModeSource> BuildCommonModeSources(
    const std::vector<ReplicaProfile>& profiles, const SharedRiskRates& rates) {
  std::vector<CommonModeSource> sources;
  for (const auto& [dimension, entry] : rates.entries) {
    if (!(entry.event_rate.per_hour() > 0.0)) {
      continue;
    }
    // Group replicas by attribute value along this dimension.
    std::map<std::string, std::vector<int>> groups;
    for (size_t i = 0; i < profiles.size(); ++i) {
      const auto it = profiles[i].attributes.find(dimension);
      if (it != profiles[i].attributes.end()) {
        groups[it->second].push_back(static_cast<int>(i));
      }
    }
    for (const auto& [value, members] : groups) {
      if (members.size() < 2) {
        continue;  // a private component is ordinary, not common-mode
      }
      CommonModeSource source;
      source.name = std::string(IndependenceDimensionName(dimension)) + ":" + value;
      source.event_rate = entry.event_rate;
      source.members = members;
      source.hit_probability = entry.hit_probability;
      source.visible_fraction = entry.visible_fraction;
      sources.push_back(std::move(source));
    }
  }
  return sources;
}

namespace {

ReplicaProfile MakeProfile(const std::string& geo, const std::string& admin,
                           const std::string& batch, const std::string& software,
                           const std::string& organization, const std::string& power) {
  ReplicaProfile p;
  p.Set(IndependenceDimension::kGeography, geo)
      .Set(IndependenceDimension::kAdministration, admin)
      .Set(IndependenceDimension::kHardwareBatch, batch)
      .Set(IndependenceDimension::kSoftwareStack, software)
      .Set(IndependenceDimension::kOrganization, organization)
      .Set(IndependenceDimension::kPowerCooling, power);
  return p;
}

}  // namespace

std::vector<ReplicaProfile> SingleSiteProfiles(int replica_count) {
  std::vector<ReplicaProfile> profiles;
  for (int i = 0; i < replica_count; ++i) {
    profiles.push_back(
        MakeProfile("hq", "ops-team", "batch-2005", "stack-a", "org", "circuit-1"));
  }
  return profiles;
}

std::vector<ReplicaProfile> FullyDiverseProfiles(int replica_count) {
  std::vector<ReplicaProfile> profiles;
  for (int i = 0; i < replica_count; ++i) {
    const std::string n = std::to_string(i);
    profiles.push_back(MakeProfile("site-" + n, "admin-" + n, "batch-" + n,
                                   "stack-" + n, "org-" + n, "circuit-" + n));
  }
  return profiles;
}

std::vector<ReplicaProfile> GeoReplicatedSameAdminProfiles(int replica_count) {
  std::vector<ReplicaProfile> profiles;
  for (int i = 0; i < replica_count; ++i) {
    const std::string n = std::to_string(i);
    profiles.push_back(MakeProfile("site-" + n, "central-ops", "batch-2005",
                                   "stack-a", "org", "circuit-" + n));
  }
  return profiles;
}

}  // namespace longstore
