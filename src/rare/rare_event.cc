#include "src/rare/rare_event.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/random.h"

namespace longstore {
namespace {

// Stream-id offset for pilot candidates: keeps every candidate's trial
// streams disjoint from each other and from the final estimate (which uses
// the root seed directly, matching the src/mc wrapper convention).
constexpr uint64_t kPilotStreamTag = 0x9a7e5eedULL;

WeightedLossProbabilityEstimate RunWeighted(const Scenario& scenario,
                                            Duration mission, const McConfig& mc,
                                            const FaultBias& bias) {
  SweepOptions options;
  options.estimand = SweepOptions::Estimand::kWeightedLossProbability;
  options.mission = mission;
  options.bias = bias;
  options.mc = mc;
  options.seed_mode = SweepOptions::SeedMode::kSharedRoot;
  const SweepResult result = SweepRunner().Run(SweepSpec(scenario), options);
  return *result.cells.front().weighted;
}

std::vector<double> DefaultThetaGrid() {
  return {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0};
}

}  // namespace

FaultBias TuneFaultBias(const Scenario& scenario, Duration mission,
                        const McConfig& mc, const IsOptions& options,
                        std::vector<PilotPoint>* pilot_out) {
  if (options.pilot_trials <= 0) {
    throw std::invalid_argument("TuneFaultBias: pilot_trials must be positive");
  }
  const std::vector<double> grid =
      options.theta_grid.empty() ? DefaultThetaGrid() : options.theta_grid;

  // Candidates: the identity measure (plain MC — the tuner must be able to
  // conclude that no bias is needed), forcing alone, then each grid
  // multiplier with forcing. The tilt goes on the fault kind that drives
  // loss: latent faults when the config has them (their windows are what
  // kills archives), visible otherwise. Tilting the other kind as well only
  // multiplies repair churn — and with it weight-carrying draws.
  // A heterogeneous fleet tilts latent faults if *any* replica has them.
  bool tilt_latent = false;
  for (const ReplicaSpec& spec : scenario.replicas) {
    if (!spec.ml.is_infinite()) {
      tilt_latent = true;
      break;
    }
  }
  std::vector<FaultBias> candidates;
  candidates.push_back(FaultBias{});
  {
    FaultBias forcing_only;
    forcing_only.force_probability = options.force_probability;
    candidates.push_back(forcing_only);
  }
  for (const double theta : grid) {
    FaultBias bias;
    (tilt_latent ? bias.theta_latent : bias.theta_visible) = theta;
    bias.force_probability = options.force_probability;
    candidates.push_back(bias);
  }

  std::vector<PilotPoint> pilot;
  pilot.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    McConfig pilot_mc = mc;
    pilot_mc.trials = options.pilot_trials;
    pilot_mc.seed = DeriveSeed(mc.seed, kPilotStreamTag + i);
    const WeightedLossProbabilityEstimate estimate =
        RunWeighted(scenario, mission, pilot_mc, candidates[i]);
    PilotPoint point;
    point.bias = candidates[i];
    point.hits = estimate.hits;
    point.probability = estimate.probability();
    point.relative_error = estimate.relative_error;
    point.effective_sample_size = estimate.effective_sample_size;
    pilot.push_back(point);
  }

  // Best trusted score, i.e. smallest relative error with enough hits and
  // effective samples behind it (a low relative error on a tiny ESS is the
  // classic importance-sampling self-deception: the weights that matter
  // have not been seen yet). The <= on ties prefers the stronger tilt,
  // which has observed the loss mechanism more often.
  const PilotPoint* best = nullptr;
  for (const PilotPoint& point : pilot) {
    if (point.hits < options.min_pilot_hits ||
        point.effective_sample_size < options.min_pilot_ess) {
      continue;
    }
    if (best == nullptr || point.relative_error <= best->relative_error) {
      best = &point;
    }
  }
  if (best == nullptr) {
    // The event is so rare that no candidate collected min_pilot_hits in the
    // pilot; fall back to whichever saw the most losses, breaking ties
    // toward the strongest tilt (candidates are ordered weak to strong).
    for (const PilotPoint& point : pilot) {
      if (best == nullptr || point.hits >= best->hits) {
        best = &point;
      }
    }
  }
  if (pilot_out != nullptr) {
    *pilot_out = std::move(pilot);
  }
  return best->bias;
}

IsLossProbabilityEstimate EstimateLossProbabilityIS(const Scenario& scenario,
                                                    Duration mission,
                                                    const McConfig& mc,
                                                    const IsOptions& options) {
  IsLossProbabilityEstimate result;
  if (options.bias.has_value()) {
    if (auto error = options.bias->Validate()) {
      throw std::invalid_argument("FaultBias: " + *error);
    }
    result.bias = *options.bias;
  } else {
    result.bias = TuneFaultBias(scenario, mission, mc, options, &result.pilot);
    result.pilot_trials_total =
        static_cast<int64_t>(result.pilot.size()) * options.pilot_trials;
  }
  result.estimate = RunWeighted(scenario, mission, mc, result.bias);
  return result;
}

FaultBias TuneFaultBias(const StorageSimConfig& config, Duration mission,
                        const McConfig& mc, const IsOptions& options,
                        std::vector<PilotPoint>* pilot_out) {
  return TuneFaultBias(Scenario::FromLegacy(config), mission, mc, options, pilot_out);
}

IsLossProbabilityEstimate EstimateLossProbabilityIS(const StorageSimConfig& config,
                                                    Duration mission,
                                                    const McConfig& mc,
                                                    const IsOptions& options) {
  return EstimateLossProbabilityIS(Scenario::FromLegacy(config), mission, mc, options);
}

}  // namespace longstore
