// The pinned rare-loss configuration shared by the CI performance gate
// (bench/bench_rare_perf.cc) and the rare-event test suite
// (tests/rare_event_test.cc). Both assert the same >= 10x
// trials-to-equal-CI bar against naive Monte Carlo on exactly this config;
// keeping it in one place keeps the gate and the test honest about testing
// the same thing. Mission-loss probability ~2.4e-6 per year (exact via the
// mirrored CTMC), i.e. ~4e7 naive trials for 10% relative error.

#ifndef LONGSTORE_SRC_RARE_PINNED_CONFIGS_H_
#define LONGSTORE_SRC_RARE_PINNED_CONFIGS_H_

#include "src/storage/config.h"

namespace longstore {

inline StorageSimConfig PinnedRareLossConfig() {
  StorageSimConfig config;
  config.replica_count = 2;
  config.params.mv = Duration::Hours(1.0e6);
  config.params.ml = Duration::Hours(5.0e5);
  config.params.mrv = Duration::Hours(2.0);
  config.params.mrl = Duration::Hours(2.0);
  config.params.mdl = Duration::Hours(20.0);
  config.scrub = ScrubPolicy::Exponential(config.params.mdl);
  return config;
}

}  // namespace longstore

#endif  // LONGSTORE_SRC_RARE_PINNED_CONFIGS_H_
