#include "src/rare/biased_sampler.h"

#include <limits>

namespace longstore {

std::optional<std::string> FaultBias::Validate() const {
  if (!(theta_visible >= 1.0) || !std::isfinite(theta_visible)) {
    return "theta_visible must be >= 1 and finite (failure biasing accelerates "
           "faults; it never slows them)";
  }
  if (!(theta_latent >= 1.0) || !std::isfinite(theta_latent)) {
    return "theta_latent must be >= 1 and finite";
  }
  if (!(tilt_probability >= 0.0) || tilt_probability >= 1.0) {
    return "tilt_probability must lie in [0, 1): the defensive mixture must keep "
           "full nominal support";
  }
  if (!(force_probability >= 0.0) || force_probability >= 1.0) {
    return "force_probability must lie in [0, 1): the forcing mixture must keep "
           "full support";
  }
  return std::nullopt;
}

BiasedFaultSampler::BiasedFaultSampler(const FaultBias& bias) : bias_(bias) {}

void BiasedFaultSampler::BeginTrial(Duration force_window) {
  force_window_ = force_window;
  log_weight_ = 0.0;
}

double BiasedFaultSampler::DrawCumulativeHazard(Rng& rng, double theta,
                                                double window_hazard) {
  // theta == 1 is the same measure as q == 0; folding it into q keeps the
  // draw on the single-uniform identity path, bit for bit.
  const double q = theta == 1.0 ? 0.0 : bias_.tilt_probability;
  const double p = bias_.force_probability;
  const bool forcing =
      p > 0.0 && window_hazard > 0.0 && std::isfinite(window_hazard);
  if (q == 0.0 && !forcing) {
    // Unbiased inverse-transform draw: identical to Rng::NextExponential's
    // expression, and contributes exactly zero log-weight.
    return -std::log(rng.NextDoubleOpen());
  }

  // Window mass under the biased (defensive-tilt) proposal:
  //   G(Λ_W) = q·(1 − e^{−θΛ_W}) + (1 − q)·(1 − e^{−Λ_W}).
  double inside_mass = 0.0;
  if (forcing) {
    inside_mass = q * -std::expm1(-theta * window_hazard) +
                  (1.0 - q) * -std::expm1(-window_hazard);
  }

  double hazard;
  if (forcing && rng.NextDouble() < p) {
    // Conditional draw from the defensive tilt restricted to [0, Λ_W]: pick
    // the mixture component in proportion to its window mass, then invert
    // its conditional CDF. The survival target 1 − v·G_c lies in
    // [e^{−θ_cΛ_W}, 1), so the hazard lands in (0, Λ_W].
    const double tilted_inside = q * -std::expm1(-theta * window_hazard);
    const bool tilted = rng.NextDouble() * inside_mass < tilted_inside;
    const double component_theta = tilted ? theta : 1.0;
    const double v = rng.NextDoubleOpen();
    hazard = -std::log1p(v * std::expm1(-component_theta * window_hazard)) /
             component_theta;
  } else if (q > 0.0 && rng.NextDouble() < q) {
    hazard = -std::log(rng.NextDoubleOpen()) / theta;
  } else {
    hazard = -std::log(rng.NextDoubleOpen());
  }

  // log LR of the defensive tilt: −log(qθ·e^{−(θ−1)Λ} + 1 − q). Stable: the
  // exponent is ≤ 0 (θ ≥ 1), so the argument lies in (1−q, qθ+1−q].
  log_weight_ -= std::log(q * theta * std::exp(-(theta - 1.0) * hazard) + (1.0 - q));
  if (forcing) {
    // The forcing-mixture correction depends only on where the draw landed,
    // not on which branch produced it.
    log_weight_ -= std::log(
        (hazard <= window_hazard ? p / inside_mass : 0.0) + (1.0 - p));
  }
  return hazard;
}

Duration BiasedFaultSampler::DrawExponentialFault(Rng& rng, Duration mean,
                                                  FaultKind kind,
                                                  bool forcing_eligible) {
  if (mean.is_infinite()) {
    return Duration::Infinite();
  }
  const double window_hazard =
      forcing_eligible && !force_window_.is_infinite()
          ? force_window_ / mean
          : std::numeric_limits<double>::infinity();
  const double hazard = DrawCumulativeHazard(rng, bias_.theta(kind), window_hazard);
  return Duration::Hours(hazard * mean.hours());
}

Duration BiasedFaultSampler::DrawWeibullResidualFault(Rng& rng, double shape,
                                                      Duration scale,
                                                      double normalized_age,
                                                      FaultKind kind,
                                                      bool forcing_eligible) {
  double window_hazard = std::numeric_limits<double>::infinity();
  if (forcing_eligible && !force_window_.is_infinite()) {
    const double window_end = normalized_age + force_window_ / scale;
    window_hazard =
        std::pow(window_end, shape) - std::pow(normalized_age, shape);
  }
  const double hazard = DrawCumulativeHazard(rng, bias_.theta(kind), window_hazard);
  const double life = std::pow(std::pow(normalized_age, shape) + hazard, 1.0 / shape);
  const double residual_hours = (life - normalized_age) * scale.hours();
  // Same boundary guard as the unbiased engine draw: a residual rounded to
  // zero or an overflowed age term both mean the hazard is astronomical at
  // this age — fail (essentially) immediately.
  if (!(residual_hours > 0.0) ||
      residual_hours == std::numeric_limits<double>::infinity()) {
    return Duration::Hours(1e-9);
  }
  return Duration::Hours(residual_hours);
}

}  // namespace longstore
