// Rare-event estimation of mission-loss probabilities by importance
// sampling.
//
// EstimateLossProbability (src/mc) needs ~100/p trials to pin a loss
// probability p to 10% relative error: 1e10 trials for p = 1e-8. The
// importance-sampled estimator here runs the same simulator under a tilted
// fault measure (src/rare/biased_sampler.h) in which losses are common,
// weights each loss by its exact likelihood ratio, and recovers the nominal
// probability unbiasedly — typically reaching the same CI in 10x to many
// 1000x fewer trials, the gap growing as the event gets rarer.
//
// The change of measure can be given explicitly or auto-tuned: a short
// pilot run scores a grid of hazard multipliers by estimated relative error
// and picks the best. See src/rare/README.md for the estimator math and for
// when to prefer IS over censored-MLE MTTDL or plain Monte Carlo.

#ifndef LONGSTORE_SRC_RARE_RARE_EVENT_H_
#define LONGSTORE_SRC_RARE_RARE_EVENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/rare/biased_sampler.h"
#include "src/sweep/sweep.h"

namespace longstore {

struct IsOptions {
  // Explicit change of measure. Unset (the default) auto-tunes one from a
  // pilot run.
  std::optional<FaultBias> bias;

  // Auto-tuner knobs. Candidates are: the identity measure, forcing alone,
  // and each `theta_grid` multiplier applied to the fault kind that drives
  // loss (latent when latent faults exist, visible otherwise — tilting the
  // visible hazard in a latent-dominated config only churns repairs and
  // degrades the weights). Empty grid means the default ladder
  // {2, 4, ..., 256}. A candidate's relative-error score is only trusted at
  // `min_pilot_hits`+ observed losses and `min_pilot_ess`+ effective
  // samples; with no trustworthy candidate the most-hits one wins.
  std::vector<double> theta_grid;
  int64_t pilot_trials = 2000;
  double force_probability = 0.5;
  int64_t min_pilot_hits = 5;
  double min_pilot_ess = 8.0;
};

// One auto-tuner candidate's pilot outcome.
struct PilotPoint {
  FaultBias bias;
  int64_t hits = 0;
  double probability = 0.0;
  double relative_error = 0.0;
  double effective_sample_size = 0.0;
};

struct IsLossProbabilityEstimate {
  WeightedLossProbabilityEstimate estimate;
  // The measure the final estimate ran under (tuned or explicit).
  FaultBias bias;
  // Tuning cost and per-candidate diagnostics; empty/zero when `bias` was
  // given explicitly.
  int64_t pilot_trials_total = 0;
  std::vector<PilotPoint> pilot;

  double probability() const { return estimate.probability(); }
};

// Picks a FaultBias for the scenario/mission by pilot runs: the candidate
// with the smallest estimated relative error among those with at least
// min_pilot_hits losses, falling back to the candidate with the most
// losses (largest tilt on ties) when none has enough. Deterministic in
// mc.seed. If `pilot_out` is non-null it receives every candidate's pilot
// diagnostics. Heterogeneous fleets tilt the latent hazard if any replica
// has latent faults. The StorageSimConfig overload converts through
// Scenario::FromLegacy (bit-identical pilots for homogeneous fleets).
FaultBias TuneFaultBias(const Scenario& scenario, Duration mission,
                        const McConfig& mc, const IsOptions& options = {},
                        std::vector<PilotPoint>* pilot_out = nullptr);
FaultBias TuneFaultBias(const StorageSimConfig& config, Duration mission,
                        const McConfig& mc, const IsOptions& options = {},
                        std::vector<PilotPoint>* pilot_out = nullptr);

// Importance-sampled counterpart of EstimateLossProbability: mc.trials
// weighted trials over `mission` under the (explicit or tuned) bias.
// Deterministic in mc.seed regardless of thread count, like every sweep
// estimate. With the identity bias this reproduces the unbiased estimator's
// trial outcomes bit for bit.
IsLossProbabilityEstimate EstimateLossProbabilityIS(const Scenario& scenario,
                                                    Duration mission,
                                                    const McConfig& mc,
                                                    const IsOptions& options = {});
IsLossProbabilityEstimate EstimateLossProbabilityIS(const StorageSimConfig& config,
                                                    Duration mission,
                                                    const McConfig& mc,
                                                    const IsOptions& options = {});

}  // namespace longstore

#endif  // LONGSTORE_SRC_RARE_RARE_EVENT_H_
