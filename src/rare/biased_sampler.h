// Importance-sampling change of measure for fault-time draws.
//
// At realistic fault/repair rates a millennia-scale archive almost never
// loses data inside a feasible trial, so naive Monte Carlo spends billions
// of trials to observe a handful of losses. The standard rare-event remedy
// (Heidelberger; Nicola, Shahabuddin & Nakayama) is to simulate under a
// *tilted* fault distribution that makes faults frequent, and to weight each
// trial by the exact likelihood ratio between the nominal and tilted path
// measures, restoring unbiasedness.
//
// Both fault distributions this library simulates reduce to one primitive:
// the integrated hazard over the drawn interval is a standard exponential.
//   exponential(mean m):          Λ(x) = x / m
//   Weibull residual at age a:    Λ(x) = ((a + x)/λ)^k − (a/λ)^k
// so one sampler covers both families by drawing Λ and letting the caller
// invert it.
//
// The change of measure has two ingredients, both *defensive mixtures*
// (Hesterberg) so that every per-draw likelihood ratio is bounded — a pure
// exponential tilt has E[LR²] = ∞ for θ ≥ 2 because non-firing clock draws
// are unbounded, which degrades the weighted estimator catastrophically:
//
//  * failure biasing: with probability q the hazard is multiplied by θ
//    (Λ ~ Exp(θ) instead of Exp(1)), with probability 1 − q the draw is
//    nominal. Density g(Λ) = q·θe^{−θΛ} + (1−q)·e^{−Λ}, giving the exact,
//    numerically stable per-draw log-likelihood ratio
//      log LR = −log( qθ·e^{−(θ−1)Λ} + (1 − q) )   ∈ [−log(qθ+1−q), −log(1−q)]
//  * forcing: draws taken at trial start (the initial fault clocks) are
//    additionally pulled into the mission window: with probability p the
//    draw is conditioned on Λ ≤ Λ_W (the nominal integrated hazard over the
//    window), with probability 1 − p it is an ordinary biased draw. The
//    mixture correction depends only on where the draw landed:
//      log LR += −log( p·1{Λ ≤ Λ_W} / G(Λ_W) + (1 − p) )
//    where G(Λ_W) = q·(1−e^{−θΛ_W}) + (1−q)·(1−e^{−Λ_W}) is the biased
//    probability of landing inside the window.
//
// Repair, scrub/detection, and common-mode draws stay unbiased: they are not
// what makes loss rare, and tilting them only adds weight variance.
//
// At the identity bias (θ = 1 or q = 0, and p = 0) every draw consumes the
// same uniforms and computes the same expressions as the unbiased engine
// path, so results are bit-identical to a run without a sampler and every
// weight is exactly 1 (tests/rare_event_test.cc pins this).

#ifndef LONGSTORE_SRC_RARE_BIASED_SAMPLER_H_
#define LONGSTORE_SRC_RARE_BIASED_SAMPLER_H_

#include <cmath>
#include <optional>
#include <string>

#include "src/storage/metrics.h"
#include "src/util/random.h"
#include "src/util/units.h"

namespace longstore {

// The change of measure, as data. theta_* multiply the visible / latent
// fault hazards (1 = no tilt); tilt_probability is the defensive-mixture
// weight q of the tilted component; force_probability is the mixture weight
// p pulling trial-start fault draws into the mission window. Both mixture
// weights must stay below 1 so nominal-typical paths keep positive density
// (that is what bounds the weights).
struct FaultBias {
  double theta_visible = 1.0;
  double theta_latent = 1.0;
  double tilt_probability = 0.9;
  double force_probability = 0.0;

  // Returns an error message if the bias is unusable (theta below 1 or
  // non-finite, mixture probabilities outside [0, 1)).
  std::optional<std::string> Validate() const;

  double theta(FaultKind kind) const {
    return kind == FaultKind::kVisible ? theta_visible : theta_latent;
  }
  bool is_identity() const {
    return (tilt_probability == 0.0 ||
            (theta_visible == 1.0 && theta_latent == 1.0)) &&
           force_probability == 0.0;
  }
};

// Draws fault times from the biased measure and accumulates the trial's
// log-likelihood ratio. One sampler serves one TrialRunner: BeginTrial()
// resets the weight and fixes the forcing window (the mission horizon);
// the draw methods are called by ReplicatedStorageSystem in place of the
// unbiased Rng draws, with `forcing_eligible` true only for draws taken at
// simulation time zero (the initial fault clocks).
class BiasedFaultSampler {
 public:
  explicit BiasedFaultSampler(const FaultBias& bias);

  void BeginTrial(Duration force_window);

  // Exponentially distributed fault delay with nominal mean `mean` (already
  // including any correlation scaling). Infinite mean returns
  // Duration::Infinite() without consuming randomness or weight, matching
  // Rng::NextExponential.
  Duration DrawExponentialFault(Rng& rng, Duration mean, FaultKind kind,
                                bool forcing_eligible);

  // Weibull residual-lifetime fault delay conditioned on survival to the
  // replica's age: `normalized_age` is age/scale, `scale` the Weibull scale
  // matching the configured mean. Mirrors the unbiased engine draw exactly,
  // including its boundary guard (see ReplicatedStorageSystem::DrawFaultDelay).
  Duration DrawWeibullResidualFault(Rng& rng, double shape, Duration scale,
                                    double normalized_age, FaultKind kind,
                                    bool forcing_eligible);

  double log_weight() const { return log_weight_; }
  double weight() const { return std::exp(log_weight_); }
  const FaultBias& bias() const { return bias_; }

 private:
  // Draws the integrated hazard Λ (nominally Exp(1)) from the biased
  // mixture, optionally forced below `window_hazard`, and accumulates the
  // draw's log-likelihood ratio.
  double DrawCumulativeHazard(Rng& rng, double theta, double window_hazard);

  FaultBias bias_;
  Duration force_window_ = Duration::Infinite();
  double log_weight_ = 0.0;
};

}  // namespace longstore

#endif  // LONGSTORE_SRC_RARE_BIASED_SAMPLER_H_
